//! Trace serialization: JSON (interoperable), a compact line format
//! (diff-able, what the anonymized trace release would look like), and
//! a binary columnar format ([`bin`]) for paper-scale traces, with
//! streaming writer/reader APIs.
//!
//! [`load_auto`] sniffs the format from the leading bytes, so every
//! consumer (bench binaries, examples) accepts any of the three.
//!
//! The compact format is line-oriented ASCII:
//!
//! ```text
//! # edonkey-trace v1
//! F <hex-id> <size> <kind>          one line per file, in FileRef order
//! P <hex-uid> <ip> <cc> <asn>       one line per peer, in PeerId order
//! D <day>                           starts a day section
//! C <peer> <fref> <fref> ...        one cache within the current day
//! ```

pub mod bin;

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::io::Read as _;
use std::path::{Path, PathBuf};

pub use bin::{from_bin, load_bin, save_bin, to_bin, TraceReader, TraceWriter};

use edonkey_proto::md4::Digest;
use edonkey_proto::query::FileKind;

use crate::model::{CountryCode, DaySnapshot, FileInfo, FileRef, PeerId, PeerInfo, Trace};

/// An error loading or saving a trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// JSON syntax or schema error.
    Json(String),
    /// Compact-format syntax error with line number and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed trace violated a structural invariant.
    Invalid(String),
    /// Binary-format error with the absolute byte offset it was
    /// detected at.
    Bin {
        /// Byte offset within the file.
        offset: u64,
        /// What went wrong.
        message: String,
    },
    /// Any of the above, annotated with the file it occurred on. Every
    /// path-taking entry point (`load_*`, `save_*`, [`sniff_format`],
    /// [`load_auto`]) wraps its errors in this variant, so a failure
    /// deep in a parse still names the file.
    WithPath {
        /// The file the operation was on.
        path: PathBuf,
        /// The underlying error.
        source: Box<TraceIoError>,
    },
}

impl TraceIoError {
    /// Annotates the error with the file path the operation was on.
    /// Idempotent: an error already carrying a path is returned as-is,
    /// so nested entry points (e.g. [`load_auto`] calling `load_bin`)
    /// keep the innermost, most specific annotation.
    pub fn with_path(self, path: &Path) -> TraceIoError {
        match self {
            TraceIoError::WithPath { .. } => self,
            other => TraceIoError::WithPath {
                path: path.to_path_buf(),
                source: Box::new(other),
            },
        }
    }
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::Json(e) => write!(f, "json error: {e}"),
            TraceIoError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            TraceIoError::Invalid(msg) => write!(f, "invalid trace: {msg}"),
            TraceIoError::Bin { offset, message } => {
                write!(f, "binary format error at byte {offset}: {message}")
            }
            TraceIoError::WithPath { path, source } => {
                write!(f, "{}: {}", path.display(), source)
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::WithPath { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// The `<name>.tmp` sibling used for crash-safe writes.
pub(crate) fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Crash-safe whole-file write: the bytes stream into a `<name>.tmp`
/// sibling and an atomic rename installs them, so an interrupted write
/// never leaves a half-written file at `path` — whatever was there
/// before stays intact.
fn write_atomic(path: &Path, contents: &str) -> Result<(), TraceIoError> {
    let tmp = tmp_sibling(path);
    let write = || -> io::Result<()> {
        fs::write(&tmp, contents)?;
        fs::rename(&tmp, path)
    };
    write().map_err(|e| TraceIoError::Io(e).with_path(path))
}

/// Saves a trace as JSON (crash-safe: tmp sibling + atomic rename).
pub fn save_json(trace: &Trace, path: &Path) -> Result<(), TraceIoError> {
    write_atomic(path, &to_json(trace))
}

/// Loads a JSON trace and validates its invariants.
pub fn load_json(path: &Path) -> Result<Trace, TraceIoError> {
    let load = || -> Result<Trace, TraceIoError> {
        let data = fs::read_to_string(path)?;
        let trace = from_json(&data)?;
        trace.check_invariants().map_err(TraceIoError::Invalid)?;
        Ok(trace)
    };
    load().map_err(|e| e.with_path(path))
}

/// Serializes a trace as JSON (hand-rolled: this workspace carries no
/// serde dependency — see DESIGN.md's note on vendored/offline deps).
///
/// Schema:
///
/// ```json
/// {"files":[{"id":"<hex32>","size":1,"kind":"Audio"}],
///  "peers":[{"uid":"<hex32>","ip":1,"country":"FR","asn":3215}],
///  "days":[{"day":350,"caches":[[0,[0,2]]]}]}
/// ```
pub fn to_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(64 * (trace.files.len() + trace.peers.len()));
    out.push_str("{\"files\":[");
    for (i, f) in trace.files.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(
            out,
            "{{\"id\":\"{}\",\"size\":{},\"kind\":\"{}\"}}",
            f.id.to_hex(),
            f.size,
            f.kind
        )
        .expect("string write");
    }
    out.push_str("],\"peers\":[");
    for (i, p) in trace.peers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(
            out,
            "{{\"uid\":\"{}\",\"ip\":{},\"country\":\"{}\",\"asn\":{}}}",
            p.uid.to_hex(),
            p.ip,
            p.country,
            p.asn
        )
        .expect("string write");
    }
    out.push_str("],\"days\":[");
    for (i, day) in trace.days.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{{\"day\":{},\"caches\":[", day.day).expect("string write");
        for (j, (peer, cache)) in day.caches.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write!(out, "[{},[", peer.0).expect("string write");
            for (k, f) in cache.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write!(out, "{}", f.0).expect("string write");
            }
            out.push_str("]]");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Parses the JSON trace schema written by [`to_json`].
///
/// Whitespace-tolerant; field order within objects is fixed (this is a
/// private interchange format, not a general JSON reader).
pub fn from_json(text: &str) -> Result<Trace, TraceIoError> {
    let mut p = JsonCursor {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut trace = Trace::new();
    p.expect(b'{')?;
    p.key("files")?;
    p.expect(b'[')?;
    if !p.try_consume(b']') {
        loop {
            p.expect(b'{')?;
            p.key("id")?;
            let id = p.hex_digest()?;
            p.expect(b',')?;
            p.key("size")?;
            let size = p.number()?;
            p.expect(b',')?;
            p.key("kind")?;
            let kind_str = p.string()?;
            let kind = FileKind::from_str_ci(&kind_str)
                .ok_or_else(|| p.error(&format!("unknown file kind {kind_str:?}")))?;
            p.expect(b'}')?;
            trace.files.push(FileInfo { id, size, kind });
            if !p.try_consume(b',') {
                break;
            }
        }
        p.expect(b']')?;
    }
    p.expect(b',')?;
    p.key("peers")?;
    p.expect(b'[')?;
    if !p.try_consume(b']') {
        loop {
            p.expect(b'{')?;
            p.key("uid")?;
            let uid = p.hex_digest()?;
            p.expect(b',')?;
            p.key("ip")?;
            let ip = p.number()? as u32;
            p.expect(b',')?;
            p.key("country")?;
            let cc = p.string()?;
            if cc.len() != 2 || !cc.bytes().all(|b| b.is_ascii_alphabetic()) {
                return Err(p.error(&format!("bad country code {cc:?}")));
            }
            p.expect(b',')?;
            p.key("asn")?;
            let asn = p.number()? as u32;
            p.expect(b'}')?;
            trace.peers.push(PeerInfo {
                uid,
                ip,
                country: CountryCode::new(&cc),
                asn,
            });
            if !p.try_consume(b',') {
                break;
            }
        }
        p.expect(b']')?;
    }
    p.expect(b',')?;
    p.key("days")?;
    p.expect(b'[')?;
    if !p.try_consume(b']') {
        loop {
            p.expect(b'{')?;
            p.key("day")?;
            let day_no = p.number()? as u32;
            let mut snapshot = DaySnapshot::new(day_no);
            p.expect(b',')?;
            p.key("caches")?;
            p.expect(b'[')?;
            if !p.try_consume(b']') {
                loop {
                    p.expect(b'[')?;
                    let peer = PeerId(p.number()? as u32);
                    p.expect(b',')?;
                    p.expect(b'[')?;
                    let mut cache = Vec::new();
                    if !p.try_consume(b']') {
                        loop {
                            cache.push(FileRef(p.number()? as u32));
                            if !p.try_consume(b',') {
                                break;
                            }
                        }
                        p.expect(b']')?;
                    }
                    p.expect(b']')?;
                    if snapshot.cache_of(peer).is_some() {
                        return Err(p.error(&format!("duplicate peer {peer} in day {day_no}")));
                    }
                    snapshot.insert(peer, cache);
                    if !p.try_consume(b',') {
                        break;
                    }
                }
                p.expect(b']')?;
            }
            p.expect(b'}')?;
            trace.days.push(snapshot);
            if !p.try_consume(b',') {
                break;
            }
        }
        p.expect(b']')?;
    }
    p.expect(b'}')?;
    p.end()?;
    trace.check_invariants().map_err(TraceIoError::Invalid)?;
    Ok(trace)
}

/// Byte cursor for the fixed-schema JSON reader.
struct JsonCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonCursor<'_> {
    fn error(&self, message: &str) -> TraceIoError {
        TraceIoError::Json(format!("at byte {}: {}", self.pos, message))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), TraceIoError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!(
                "expected {:?}, found {:?}",
                c as char,
                self.bytes.get(self.pos).map(|&b| b as char)
            )))
        }
    }

    fn try_consume(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes `"name":`.
    fn key(&mut self, name: &str) -> Result<(), TraceIoError> {
        let found = self.string()?;
        if found != name {
            return Err(self.error(&format!("expected key {name:?}, found {found:?}")));
        }
        self.expect(b':')
    }

    /// Consumes a string literal (no escape support: the schema only
    /// carries hex digests, country codes and kind names).
    fn string(&mut self) -> Result<String, TraceIoError> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid utf-8 in string"))?
                    .to_string();
                if s.contains('\\') {
                    return Err(self.error("escapes are not part of the trace schema"));
                }
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.error("unterminated string"))
    }

    fn hex_digest(&mut self) -> Result<Digest, TraceIoError> {
        let s = self.string()?;
        Digest::from_hex(&s).ok_or_else(|| self.error(&format!("bad hex digest {s:?}")))
    }

    /// Consumes a non-negative integer.
    fn number(&mut self) -> Result<u64, TraceIoError> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.error("expected a number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ascii")
            .parse()
            .map_err(|_| self.error("number out of range"))
    }

    fn end(&mut self) -> Result<(), TraceIoError> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(self.error("trailing data after trace"))
        }
    }
}

/// Serializes a trace into the compact line format.
pub fn to_compact(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("# edonkey-trace v1\n");
    for f in &trace.files {
        writeln!(out, "F {} {} {}", f.id.to_hex(), f.size, f.kind).expect("string write");
    }
    for p in &trace.peers {
        writeln!(out, "P {} {} {} {}", p.uid.to_hex(), p.ip, p.country, p.asn)
            .expect("string write");
    }
    for day in &trace.days {
        writeln!(out, "D {}", day.day).expect("string write");
        for (peer, cache) in &day.caches {
            write!(out, "C {}", peer.0).expect("string write");
            for f in cache {
                write!(out, " {}", f.0).expect("string write");
            }
            out.push('\n');
        }
    }
    out
}

/// Parses the compact line format.
pub fn from_compact(text: &str) -> Result<Trace, TraceIoError> {
    let mut trace = Trace::new();
    let mut current_day: Option<DaySnapshot> = None;
    let err = |line: usize, message: &str| TraceIoError::Parse {
        line,
        message: message.to_string(),
    };
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(' ');
        let tag = parts.next().expect("split yields at least one item");
        match tag {
            "F" => {
                let hex = parts.next().ok_or_else(|| err(lineno, "missing file id"))?;
                let id = Digest::from_hex(hex).ok_or_else(|| err(lineno, "bad file id hex"))?;
                let size: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad size"))?;
                let kind_str = parts.next().ok_or_else(|| err(lineno, "missing kind"))?;
                let kind =
                    FileKind::from_str_ci(kind_str).ok_or_else(|| err(lineno, "unknown kind"))?;
                trace.files.push(FileInfo { id, size, kind });
            }
            "P" => {
                let hex = parts.next().ok_or_else(|| err(lineno, "missing uid"))?;
                let uid = Digest::from_hex(hex).ok_or_else(|| err(lineno, "bad uid hex"))?;
                let ip: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad ip"))?;
                let cc = parts.next().ok_or_else(|| err(lineno, "missing country"))?;
                if cc.len() != 2 || !cc.bytes().all(|b| b.is_ascii_alphabetic()) {
                    return Err(err(lineno, "bad country code"));
                }
                let asn: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad asn"))?;
                trace.peers.push(PeerInfo {
                    uid,
                    ip,
                    country: CountryCode::new(cc),
                    asn,
                });
            }
            "D" => {
                if let Some(done) = current_day.take() {
                    trace.days.push(done);
                }
                let day: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad day"))?;
                current_day = Some(DaySnapshot::new(day));
            }
            "C" => {
                let day = current_day
                    .as_mut()
                    .ok_or_else(|| err(lineno, "cache line before any day"))?;
                let peer: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad peer id"))?;
                let mut cache = Vec::new();
                for item in parts {
                    let f: u32 = item.parse().map_err(|_| err(lineno, "bad file ref"))?;
                    cache.push(FileRef(f));
                }
                // `insert` re-sorts and would panic on duplicates; map that
                // to a parse error instead.
                if day.cache_of(PeerId(peer)).is_some() {
                    return Err(err(lineno, "duplicate peer in day"));
                }
                day.insert(PeerId(peer), cache);
            }
            other => return Err(err(lineno, &format!("unknown record tag {other:?}"))),
        }
    }
    if let Some(done) = current_day.take() {
        trace.days.push(done);
    }
    trace.days.sort_by_key(|d| d.day);
    trace.check_invariants().map_err(TraceIoError::Invalid)?;
    Ok(trace)
}

/// Saves a trace in the compact format (crash-safe: tmp sibling +
/// atomic rename).
pub fn save_compact(trace: &Trace, path: &Path) -> Result<(), TraceIoError> {
    write_atomic(path, &to_compact(trace))
}

/// Loads a compact-format trace.
pub fn load_compact(path: &Path) -> Result<Trace, TraceIoError> {
    let load = || -> Result<Trace, TraceIoError> { from_compact(&fs::read_to_string(path)?) };
    load().map_err(|e| e.with_path(path))
}

/// The on-disk formats [`load_auto`] can distinguish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// Binary columnar (`io::bin`).
    Binary,
    /// The JSON interchange schema.
    Json,
    /// The compact line format.
    Compact,
}

/// Sniffs a trace file's format from its leading bytes: the binary
/// magic wins outright, a leading `{` (after whitespace) means JSON,
/// anything else is read as the compact line format.
pub fn sniff_format(path: &Path) -> Result<TraceFormat, TraceIoError> {
    let mut head = [0u8; 8];
    let mut sniff = || -> io::Result<usize> { fs::File::open(path)?.read(&mut head) };
    let n = sniff().map_err(|e| TraceIoError::Io(e).with_path(path))?;
    if head[..n] == bin::MAGIC[..] {
        return Ok(TraceFormat::Binary);
    }
    match head[..n].iter().find(|b| !b.is_ascii_whitespace()) {
        Some(b'{') => Ok(TraceFormat::Json),
        _ => Ok(TraceFormat::Compact),
    }
}

/// Loads a trace in any supported format, sniffing it from the file's
/// leading bytes.
pub fn load_auto(path: &Path) -> Result<Trace, TraceIoError> {
    match sniff_format(path)? {
        TraceFormat::Binary => load_bin(path),
        TraceFormat::Json => load_json(path),
        TraceFormat::Compact => load_compact(path),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TraceBuilder;
    use edonkey_proto::md4::Md4;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let p0 = b.intern_peer(PeerInfo {
            uid: Md4::digest(b"u0"),
            ip: 100,
            country: CountryCode::new("FR"),
            asn: 3215,
        });
        let p1 = b.intern_peer(PeerInfo {
            uid: Md4::digest(b"u1"),
            ip: 200,
            country: CountryCode::new("DE"),
            asn: 3320,
        });
        let f0 = b.intern_file(FileInfo {
            id: Md4::digest(b"f0"),
            size: 4_000_000,
            kind: FileKind::Audio,
        });
        let f1 = b.intern_file(FileInfo {
            id: Md4::digest(b"f1"),
            size: 700_000_000,
            kind: FileKind::Video,
        });
        b.observe(350, p0, vec![f0, f1]);
        b.observe(350, p1, vec![]);
        b.observe(351, p0, vec![f1]);
        b.finish()
    }

    #[test]
    fn json_round_trip() {
        let trace = sample_trace();
        let dir = std::env::temp_dir().join("edonkey-trace-test-json");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        save_json(&trace, &path).unwrap();
        let loaded = load_json(&path).unwrap();
        assert_eq!(loaded, trace);
    }

    #[test]
    fn compact_round_trip() {
        let trace = sample_trace();
        let text = to_compact(&trace);
        let loaded = from_compact(&text).unwrap();
        assert_eq!(loaded, trace);
    }

    #[test]
    fn compact_file_round_trip() {
        let trace = sample_trace();
        let dir = std::env::temp_dir().join("edonkey-trace-test-compact");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        save_compact(&trace, &path).unwrap();
        assert_eq!(load_compact(&path).unwrap(), trace);
    }

    #[test]
    fn compact_tolerates_comments_and_blank_lines() {
        let trace = sample_trace();
        let text = format!("# comment\n\n{}\n# trailing\n", to_compact(&trace));
        assert_eq!(from_compact(&text).unwrap(), trace);
    }

    #[test]
    fn compact_parse_errors_carry_line_numbers() {
        let bad = "# edonkey-trace v1\nF nothex 12 Audio\n";
        match from_compact(bad) {
            Err(TraceIoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        for bad in [
            "X what\n",
            "C 0 1\n",        // cache before day
            "F aa 1 Audio\n", // short hex
            "D notaday\n",
            "P 31d6cfe0d16ae931b73c59d7e0c089c0 1 F1 3215\n", // bad country
        ] {
            assert!(from_compact(bad).is_err(), "input {bad:?}");
        }
    }

    #[test]
    fn compact_rejects_out_of_range_refs() {
        // A cache referencing file 99 with no files declared.
        let bad = "P 31d6cfe0d16ae931b73c59d7e0c089c0 1 FR 3215\nD 350\nC 0 99\n";
        assert!(matches!(from_compact(bad), Err(TraceIoError::Invalid(_))));
    }

    #[test]
    fn compact_rejects_duplicate_peer_in_day() {
        let trace = sample_trace();
        let mut text = to_compact(&trace);
        text.push_str("D 360\nC 0 0\nC 0 1\n");
        assert!(matches!(
            from_compact(&text),
            Err(TraceIoError::Parse { .. })
        ));
    }

    #[test]
    fn load_auto_sniffs_all_three_formats() {
        let trace = sample_trace();
        let dir = std::env::temp_dir().join("edonkey-trace-test-auto");
        fs::create_dir_all(&dir).unwrap();
        let json = dir.join("t.json");
        let compact = dir.join("t.trace");
        let bin = dir.join("t.edt");
        save_json(&trace, &json).unwrap();
        save_compact(&trace, &compact).unwrap();
        save_bin(&trace, &bin).unwrap();
        assert_eq!(sniff_format(&json).unwrap(), TraceFormat::Json);
        assert_eq!(sniff_format(&compact).unwrap(), TraceFormat::Compact);
        assert_eq!(sniff_format(&bin).unwrap(), TraceFormat::Binary);
        for path in [&json, &compact, &bin] {
            assert_eq!(load_auto(path).unwrap(), trace, "{}", path.display());
        }
    }

    #[test]
    fn error_display() {
        let e = TraceIoError::Parse {
            line: 3,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn errors_carry_the_file_path() {
        let dir = std::env::temp_dir().join("edonkey-trace-test-errpath");
        fs::create_dir_all(&dir).unwrap();

        // A missing file: the i/o error names the path.
        let missing = dir.join("missing.edt");
        let _ = fs::remove_file(&missing);
        let e = load_auto(&missing).unwrap_err();
        assert!(e.to_string().contains("missing.edt"), "{e}");

        // Corrupt binary on disk: path AND byte offset in one message,
        // with the underlying error reachable through source().
        let trace = sample_trace();
        let corrupt = dir.join("corrupt.edt");
        save_bin(&trace, &corrupt).unwrap();
        let mut bytes = fs::read(&corrupt).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&corrupt, &bytes).unwrap();
        let e = load_auto(&corrupt).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("corrupt.edt"), "{msg}");
        assert!(msg.contains("byte"), "{msg}");
        let inner = std::error::Error::source(&e).expect("WithPath chains its source");
        assert!(inner.to_string().contains("byte"), "{inner}");

        // Broken JSON on disk: same contract for the text codec.
        let bad_json = dir.join("bad.json");
        fs::write(&bad_json, "{\"files\":[oops").unwrap();
        let e = load_auto(&bad_json).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("bad.json"), "{msg}");
        assert!(msg.contains("byte"), "{msg}");

        // with_path is idempotent: no double annotation.
        let e = TraceIoError::Invalid("x".into())
            .with_path(Path::new("a"))
            .with_path(Path::new("b"));
        assert_eq!(e.to_string(), "a: invalid trace: x");
    }
}
