//! Trace surgery: subsetting and windowing operations.
//!
//! The paper's analyses constantly carve the trace: static analyses on
//! the filtered trace, dynamic ones on days 348–389 only, clustering
//! panels per country or per popularity band, removal experiments
//! without the most generous uploaders. These operations make that
//! carving first-class (and keep every derived object a valid
//! [`Trace`], so the whole analysis suite applies unchanged).

use std::collections::HashSet;

use crate::compact::{DayArena, TraceArena};
use crate::model::{CountryCode, DaySnapshot, FileRef, PeerId, Trace};
use crate::pipeline::{retain_peers, retain_peers_arena, DerivedArena, DerivedTrace};

/// Restricts a trace to an inclusive day window.
///
/// Peers and files keep their indices (only snapshots are dropped), so
/// series computed on the window line up with full-trace series.
///
/// # Examples
///
/// ```
/// use edonkey_trace::model::Trace;
/// use edonkey_trace::ops::window_days;
///
/// let trace = Trace::new();
/// let windowed = window_days(&trace, 10, 20);
/// assert!(windowed.days.is_empty());
/// ```
pub fn window_days(trace: &Trace, first: u32, last: u32) -> Trace {
    let days: Vec<DaySnapshot> = trace
        .days
        .iter()
        .filter(|snap| (first..=last).contains(&snap.day))
        .cloned()
        .collect();
    let windowed = Trace {
        files: trace.files.clone(),
        peers: trace.peers.clone(),
        days,
    };
    debug_assert_eq!(windowed.check_invariants(), Ok(()));
    windowed
}

/// Arena-native [`window_days`]: clones only the day arenas in range;
/// intern tables are shared-layout copies, no per-row allocation.
pub fn window_days_arena(arena: &TraceArena, first: u32, last: u32) -> TraceArena {
    let days: Vec<DayArena> = arena
        .days
        .iter()
        .filter(|d| (first..=last).contains(&d.day))
        .cloned()
        .collect();
    let windowed = TraceArena {
        files: arena.files.clone(),
        peers: arena.peers.clone(),
        days,
    };
    debug_assert_eq!(windowed.check_invariants(), Ok(()));
    windowed
}

/// Restricts a trace to the peers of one country (re-indexing peers).
pub fn restrict_to_country(trace: &Trace, country: CountryCode) -> DerivedTrace {
    retain_peers(trace, |p| trace.peers[p.index()].country == country)
}

/// Arena-native [`restrict_to_country`].
pub fn restrict_to_country_arena(arena: &TraceArena, country: CountryCode) -> DerivedArena {
    retain_peers_arena(arena, |p| arena.peers[p.index()].country == country)
}

/// Restricts a trace to the peers of one autonomous system.
pub fn restrict_to_as(trace: &Trace, asn: u32) -> DerivedTrace {
    retain_peers(trace, |p| trace.peers[p.index()].asn == asn)
}

/// Drops a set of files from every cache (indices preserved; the files
/// simply never appear shared). The removal experiments of Section 5
/// operate on static caches; this is the trace-level equivalent.
pub fn drop_files(trace: &Trace, files: &HashSet<FileRef>) -> Trace {
    let days = trace
        .days
        .iter()
        .map(|snap| DaySnapshot {
            day: snap.day,
            caches: snap
                .caches
                .iter()
                .map(|(p, cache)| {
                    (
                        *p,
                        cache
                            .iter()
                            .copied()
                            .filter(|f| !files.contains(f))
                            .collect(),
                    )
                })
                .collect(),
        })
        .collect();
    let out = Trace {
        files: trace.files.clone(),
        peers: trace.peers.clone(),
        days,
    };
    debug_assert_eq!(out.check_invariants(), Ok(()));
    out
}

/// Arena-native [`drop_files`]: rebuilds each day's CSR entry block with
/// one linear pass, never materializing per-peer rows.
pub fn drop_files_arena(arena: &TraceArena, files: &HashSet<FileRef>) -> TraceArena {
    let days = arena
        .days
        .iter()
        .map(|day| {
            let mut out = DayArena::new(day.day);
            out.peers = day.peers.clone();
            out.offsets.reserve(day.peers.len());
            out.entries.reserve(day.entries.len());
            for (_, row) in day.iter() {
                out.entries
                    .extend(row.iter().copied().filter(|f| !files.contains(f)));
                out.offsets.push(out.entries.len() as u32);
            }
            out
        })
        .collect();
    let out = TraceArena {
        files: arena.files.clone(),
        peers: arena.peers.clone(),
        days,
    };
    debug_assert_eq!(out.check_invariants(), Ok(()));
    out
}

/// Keeps only the peers in `keep` (re-indexing) — the building block for
/// sampled sub-traces.
pub fn subset_peers(trace: &Trace, keep: &HashSet<PeerId>) -> DerivedTrace {
    retain_peers(trace, |p| keep.contains(&p))
}

/// Arena-native [`subset_peers`].
pub fn subset_peers_arena(arena: &TraceArena, keep: &HashSet<PeerId>) -> DerivedArena {
    retain_peers_arena(arena, |p| keep.contains(&p))
}

/// Splits a trace into per-country sub-traces for the countries with at
/// least `min_peers` clients, descending by size.
pub fn split_by_country(trace: &Trace, min_peers: usize) -> Vec<(CountryCode, DerivedTrace)> {
    let mut countries: Vec<CountryCode> = trace.peers.iter().map(|p| p.country).collect();
    countries.sort_unstable();
    countries.dedup();
    let mut out: Vec<(CountryCode, DerivedTrace)> = countries
        .into_iter()
        .map(|cc| (cc, restrict_to_country(trace, cc)))
        .filter(|(_, d)| d.trace.peers.len() >= min_peers)
        .collect();
    out.sort_by_key(|(cc, d)| (std::cmp::Reverse(d.trace.peers.len()), *cc));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FileInfo, PeerInfo, TraceBuilder};
    use edonkey_proto::md4::Md4;
    use edonkey_proto::query::FileKind;

    fn build() -> Trace {
        let mut b = TraceBuilder::new();
        let mk = |b: &mut TraceBuilder, i: u8, cc: &str, asn: u32| {
            b.intern_peer(PeerInfo {
                uid: Md4::digest(&[i]),
                ip: i as u32,
                country: CountryCode::new(cc),
                asn,
            })
        };
        let fr1 = mk(&mut b, 0, "FR", 3215);
        let fr2 = mk(&mut b, 1, "FR", 12322);
        let de = mk(&mut b, 2, "DE", 3320);
        let f: Vec<FileRef> = (0..3)
            .map(|i| {
                b.intern_file(FileInfo {
                    id: Md4::digest(&[b'f', i]),
                    size: 1,
                    kind: FileKind::Audio,
                })
            })
            .collect();
        b.observe(10, fr1, vec![f[0], f[1]]);
        b.observe(10, de, vec![f[1]]);
        b.observe(11, fr2, vec![f[2]]);
        b.observe(12, fr1, vec![f[0]]);
        b.finish()
    }

    #[test]
    fn windowing_drops_outside_days() {
        let trace = build();
        let w = window_days(&trace, 10, 11);
        assert_eq!(w.days.len(), 2);
        assert_eq!(w.peers.len(), trace.peers.len(), "peers survive windowing");
        let empty = window_days(&trace, 50, 60);
        assert!(empty.days.is_empty());
    }

    #[test]
    fn country_restriction_reindexes() {
        let trace = build();
        let fr = restrict_to_country(&trace, CountryCode::new("FR"));
        assert_eq!(fr.trace.peers.len(), 2);
        assert_eq!(fr.kept, vec![PeerId(0), PeerId(1)]);
        // DE's day-10 observation is gone; FR's remain.
        assert_eq!(fr.trace.snapshot(10).unwrap().peer_count(), 1);
        let de = restrict_to_as(&trace, 3320);
        assert_eq!(de.trace.peers.len(), 1);
    }

    #[test]
    fn dropping_files_empties_caches_only() {
        let trace = build();
        let dropped = drop_files(&trace, &[FileRef(0), FileRef(2)].into_iter().collect());
        assert_eq!(
            dropped.snapshot(10).unwrap().cache_of(PeerId(0)).unwrap(),
            &[FileRef(1)]
        );
        assert!(dropped
            .snapshot(11)
            .unwrap()
            .cache_of(PeerId(1))
            .unwrap()
            .is_empty());
        assert_eq!(
            dropped.files.len(),
            trace.files.len(),
            "intern table intact"
        );
    }

    #[test]
    fn subset_and_split() {
        let trace = build();
        let only_p0 = subset_peers(&trace, &[PeerId(0)].into_iter().collect());
        assert_eq!(only_p0.trace.peers.len(), 1);
        assert_eq!(only_p0.trace.snapshot_count(), 2);
        let split = split_by_country(&trace, 1);
        assert_eq!(split.len(), 2);
        assert_eq!(split[0].0, CountryCode::new("FR"), "largest first");
        let split = split_by_country(&trace, 2);
        assert_eq!(split.len(), 1);
    }

    #[test]
    fn arena_ops_match_row_ops() {
        let trace = build();
        let arena = TraceArena::from_trace(&trace);

        assert_eq!(
            window_days_arena(&arena, 10, 11).to_trace(),
            window_days(&trace, 10, 11)
        );
        assert_eq!(
            window_days_arena(&arena, 50, 60).to_trace(),
            window_days(&trace, 50, 60)
        );

        let cc = CountryCode::new("FR");
        let row = restrict_to_country(&trace, cc);
        let csr = restrict_to_country_arena(&arena, cc);
        assert_eq!(csr.kept, row.kept);
        assert_eq!(csr.to_derived_trace().trace, row.trace);

        let dropped: HashSet<FileRef> = [FileRef(0), FileRef(2)].into_iter().collect();
        assert_eq!(
            drop_files_arena(&arena, &dropped).to_trace(),
            drop_files(&trace, &dropped)
        );

        let keep: HashSet<PeerId> = [PeerId(0)].into_iter().collect();
        let row = subset_peers(&trace, &keep);
        let csr = subset_peers_arena(&arena, &keep);
        assert_eq!(csr.kept, row.kept);
        assert_eq!(csr.to_derived_trace().trace, row.trace);
    }
}
