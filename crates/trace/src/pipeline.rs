//! The full → filtered → extrapolated trace pipeline of Section 2.3.
//!
//! * **Filtering** removes client aliasing: *"Clients sometimes change
//!   either their IP address (DHCP) or unique identifier by reinstalling
//!   the software… we removed all clients sharing either the same IP
//!   address or the same unique identifier (and kept the free riders)."*
//! * **Extrapolation** keeps clients *"connected at least 5 times over the
//!   period, with at least 10 days between the first and the last
//!   connection"* and fills every missed day in between with *"the
//!   intersection of the files at the previous and at the subsequent
//!   connection"* — a deliberately pessimistic reconstruction.

use std::collections::HashMap;
use std::path::Path;

use crate::compact::{DayArena, TraceArena};
use crate::io::bin::{TraceReader, TraceWriter};
use crate::io::TraceIoError;
use crate::model::{DaySnapshot, FileRef, PeerId, PeerInfo, Trace};
use crate::par::parallel_map_init_threads;

/// Knobs for [`extrapolate`], defaulting to the paper's values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExtrapolateConfig {
    /// Minimum number of successful snapshots per client (paper: 5).
    pub min_snapshots: usize,
    /// Minimum span in days between first and last snapshot (paper: 10).
    pub min_span_days: u32,
}

impl Default for ExtrapolateConfig {
    fn default() -> Self {
        ExtrapolateConfig {
            min_snapshots: 5,
            min_span_days: 10,
        }
    }
}

/// Result of a pipeline stage: the derived trace plus the mapping from new
/// peer ids back to the source trace's ids.
///
/// Analyses that compare stages (e.g. Table 1) need to know which original
/// client each retained client was.
#[derive(Clone, Debug)]
pub struct DerivedTrace {
    /// The derived trace, with peers re-indexed densely.
    pub trace: Trace,
    /// `kept[i]` is the source-trace id of the derived trace's peer `i`.
    pub kept: Vec<PeerId>,
}

/// Restricts a trace to a subset of its peers, re-indexing them densely
/// (file refs are preserved, so file-level series stay comparable across
/// stages).
pub fn retain_peers(trace: &Trace, keep: impl Fn(PeerId) -> bool) -> DerivedTrace {
    let mut kept = Vec::new();
    let mut remap: HashMap<PeerId, PeerId> = HashMap::new();
    for idx in 0..trace.peers.len() {
        let old = PeerId(idx as u32);
        if keep(old) {
            let new = PeerId(kept.len() as u32);
            remap.insert(old, new);
            kept.push(old);
        }
    }
    let peers = kept
        .iter()
        .map(|p| trace.peers[p.index()].clone())
        .collect();
    let mut days = Vec::with_capacity(trace.days.len());
    for snap in &trace.days {
        let caches: Vec<(PeerId, Vec<FileRef>)> = snap
            .caches
            .iter()
            .filter_map(|(p, c)| remap.get(p).map(|np| (*np, c.clone())))
            .collect();
        // Dense remapping preserves relative order, so `caches` stays
        // sorted by the new ids.
        days.push(DaySnapshot {
            day: snap.day,
            caches,
        });
    }
    let trace = Trace {
        files: trace.files.clone(),
        peers,
        days,
    };
    debug_assert_eq!(trace.check_invariants(), Ok(()));
    DerivedTrace { trace, kept }
}

/// Result of an arena-native pipeline stage: the derived CSR trace plus
/// the peer mapping, mirroring [`DerivedTrace`] for the row path.
#[derive(Clone, Debug)]
pub struct DerivedArena {
    /// The derived trace in CSR form, with peers re-indexed densely.
    pub arena: TraceArena,
    /// `kept[i]` is the source-trace id of the derived trace's peer `i`.
    pub kept: Vec<PeerId>,
}

impl DerivedArena {
    /// Materializes the row-oriented [`DerivedTrace`] (one allocation per
    /// cache) for consumers not yet ported to CSR slices.
    pub fn to_derived_trace(&self) -> DerivedTrace {
        DerivedTrace {
            trace: self.arena.to_trace(),
            kept: self.kept.clone(),
        }
    }
}

/// Arena-native [`retain_peers`]: restricts a CSR trace to a subset of
/// its peers, re-indexing densely.
///
/// No intermediate row materialization: the peer remap is a flat array
/// (no hashing), each output day is sized exactly from one counting
/// pass, and surviving cache rows are copied as slices.
pub fn retain_peers_arena(arena: &TraceArena, keep: impl Fn(PeerId) -> bool) -> DerivedArena {
    const DROPPED: u32 = u32::MAX;
    let mut kept = Vec::new();
    let mut remap: Vec<u32> = vec![DROPPED; arena.peers.len()];
    for (idx, slot) in remap.iter_mut().enumerate() {
        let old = PeerId(idx as u32);
        if keep(old) {
            *slot = kept.len() as u32;
            kept.push(old);
        }
    }
    let peers = kept
        .iter()
        .map(|p| arena.peers[p.index()].clone())
        .collect();
    let mut days = Vec::with_capacity(arena.days.len());
    for day in &arena.days {
        let mut n_rows = 0usize;
        let mut n_entries = 0usize;
        for i in 0..day.peers.len() {
            if remap[day.peers[i] as usize] != DROPPED {
                n_rows += 1;
                n_entries += day.row(i).len();
            }
        }
        let mut out = DayArena {
            day: day.day,
            peers: Vec::with_capacity(n_rows),
            offsets: Vec::with_capacity(n_rows + 1),
            entries: Vec::with_capacity(n_entries),
        };
        out.offsets.push(0);
        for i in 0..day.peers.len() {
            let new = remap[day.peers[i] as usize];
            if new != DROPPED {
                // Dense remapping preserves relative order, so the output
                // rows stay sorted by the new ids.
                out.peers.push(new);
                out.entries.extend_from_slice(day.row(i));
                out.offsets.push(out.entries.len() as u32);
            }
        }
        days.push(out);
    }
    let arena = TraceArena {
        files: arena.files.clone(),
        peers,
        days,
    };
    debug_assert_eq!(arena.check_invariants(), Ok(()));
    DerivedArena { arena, kept }
}

/// Arena-native [`filter`]: emits the filtered trace as CSR parts
/// directly, keeping exactly the peers the row-path oracle keeps.
pub fn filter_arena(arena: &TraceArena) -> DerivedArena {
    // "Ever shared?" needs no union materialization in CSR form: one
    // pass over the day rows flips a bit per peer.
    let mut shared = vec![false; arena.peers.len()];
    for day in &arena.days {
        for (peer, row) in day.iter() {
            if !row.is_empty() {
                shared[peer as usize] = true;
            }
        }
    }
    let mut by_ip: HashMap<u32, u32> = HashMap::new();
    let mut by_uid: HashMap<[u8; 16], u32> = HashMap::new();
    for peer in &arena.peers {
        *by_ip.entry(peer.ip).or_insert(0) += 1;
        *by_uid.entry(peer.uid.0).or_insert(0) += 1;
    }
    retain_peers_arena(arena, |p| {
        let info = &arena.peers[p.index()];
        let aliased = by_ip[&info.ip] > 1 || by_uid[&info.uid.0] > 1;
        !shared[p.index()] || !aliased
    })
}

/// One observation in the flattened per-client series: which day, and
/// where its row lives (day-section index + row index).
#[derive(Clone, Copy)]
struct Obs {
    day: u32,
    sec: u32,
    row: u32,
}

/// Arena-native [`extrapolate`], sharded per client over the parallel
/// runner. See [`extrapolate_arena_with_threads`] for the determinism
/// contract.
pub fn extrapolate_arena(arena: &TraceArena, config: ExtrapolateConfig) -> DerivedArena {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    extrapolate_arena_with_threads(arena, config, threads)
}

/// [`extrapolate_arena`] with an explicit worker count.
///
/// Each client's day-intersection chain is independent, so clients are
/// sharded in fixed-size chunks over the parallel runner; every worker
/// reuses one intersection scratch buffer across its chunks instead of
/// allocating per gap. Chunk boundaries depend only on the client count
/// and results are assembled in client order, so the output is
/// bit-identical to the sequential row path for any thread count.
pub fn extrapolate_arena_with_threads(
    arena: &TraceArena,
    config: ExtrapolateConfig,
    threads: usize,
) -> DerivedArena {
    // Eligibility thresholds, computed in one pass over the day rows.
    let n_input = arena.peers.len();
    let mut count = vec![0u32; n_input];
    let mut first_obs = vec![u32::MAX; n_input];
    let mut last_obs = vec![0u32; n_input];
    for day in &arena.days {
        for &p in &day.peers {
            let p = p as usize;
            count[p] += 1;
            if first_obs[p] == u32::MAX {
                first_obs[p] = day.day;
            }
            last_obs[p] = day.day;
        }
    }
    let eligible = retain_peers_arena(arena, |p| {
        let i = p.index();
        let span = if count[i] == 0 {
            0
        } else {
            last_obs[i] - first_obs[i]
        };
        count[i] as usize >= config.min_snapshots && span >= config.min_span_days
    });

    let et = &eligible.arena;
    let (Some(first), Some(last)) = (
        et.days.first().map(|d| d.day),
        et.days.last().map(|d| d.day),
    ) else {
        return eligible; // No snapshots at all; nothing to extrapolate.
    };

    // Flatten the per-client observation series (client-major, day
    // order) with a counting layout — no per-client Vec.
    let n = et.peers.len();
    let mut series_off = vec![0u32; n + 1];
    for day in &et.days {
        for &p in &day.peers {
            series_off[p as usize + 1] += 1;
        }
    }
    for i in 1..series_off.len() {
        series_off[i] += series_off[i - 1];
    }
    let mut obs = vec![
        Obs {
            day: 0,
            sec: 0,
            row: 0
        };
        series_off[n] as usize
    ];
    let mut cursor = series_off.clone();
    for (sec, day) in et.days.iter().enumerate() {
        for (row, &p) in day.peers.iter().enumerate() {
            let slot = cursor[p as usize];
            obs[slot as usize] = Obs {
                day: day.day,
                sec: sec as u32,
                row: row as u32,
            };
            cursor[p as usize] += 1;
        }
    }

    // Shard clients into fixed-size chunks (a function of the client
    // count only — never of the thread count) and fill each chunk's
    // rows independently. Rows are `(client, day_idx, len)` with the
    // cache bytes appended to the chunk's entry buffer in the same
    // order.
    let chunk_size = (n / 128).max(1);
    let chunks: Vec<(usize, usize)> = (0..n)
        .step_by(chunk_size)
        .map(|s| (s, (s + chunk_size).min(n)))
        .collect();
    struct FillChunk {
        rows: Vec<(u32, u32, u32)>,
        entries: Vec<FileRef>,
    }
    let fills: Vec<FillChunk> = parallel_map_init_threads(
        &chunks,
        threads,
        Vec::new,
        |scratch: &mut Vec<FileRef>, &(lo, hi)| {
            let mut chunk = FillChunk {
                rows: Vec::new(),
                entries: Vec::new(),
            };
            for p in lo..hi {
                let series = &obs[series_off[p] as usize..series_off[p + 1] as usize];
                for pair in series.windows(2) {
                    let (a, b) = (pair[0], pair[1]);
                    if b.day - a.day < 2 {
                        continue;
                    }
                    // Pessimistic fill: the intersection of the two
                    // surrounding observations, computed once per gap
                    // into the worker's reusable scratch.
                    let cache_a = et.days[a.sec as usize].row(a.row as usize);
                    let cache_b = et.days[b.sec as usize].row(b.row as usize);
                    sorted_intersection_into(cache_a, cache_b, scratch);
                    for day in a.day + 1..b.day {
                        chunk
                            .rows
                            .push((p as u32, day - first, scratch.len() as u32));
                        chunk.entries.extend_from_slice(scratch);
                    }
                }
                for o in series {
                    let row = et.days[o.sec as usize].row(o.row as usize);
                    chunk.rows.push((p as u32, o.day - first, row.len() as u32));
                    chunk.entries.extend_from_slice(row);
                }
            }
            chunk
        },
    );

    // Sequential assembly in chunk (= client) order: count rows and
    // entries per output day, size each day exactly, then place. Each
    // client contributes at most one row per day, so per-day rows come
    // out sorted by peer id by construction.
    let n_days = (last - first + 1) as usize;
    let mut day_rows = vec![0usize; n_days];
    let mut day_entries = vec![0usize; n_days];
    for chunk in &fills {
        for &(_, d, len) in &chunk.rows {
            day_rows[d as usize] += 1;
            day_entries[d as usize] += len as usize;
        }
    }
    let mut days: Vec<DayArena> = (0..n_days)
        .map(|i| {
            let mut day = DayArena {
                day: first + i as u32,
                peers: Vec::with_capacity(day_rows[i]),
                offsets: Vec::with_capacity(day_rows[i] + 1),
                entries: Vec::with_capacity(day_entries[i]),
            };
            day.offsets.push(0);
            day
        })
        .collect();
    for chunk in &fills {
        let mut taken = 0usize;
        for &(p, d, len) in &chunk.rows {
            let day = &mut days[d as usize];
            day.peers.push(p);
            day.entries
                .extend_from_slice(&chunk.entries[taken..taken + len as usize]);
            day.offsets.push(day.entries.len() as u32);
            taken += len as usize;
        }
    }

    let arena = TraceArena {
        files: et.files.clone(),
        peers: et.peers.clone(),
        days,
    };
    debug_assert_eq!(arena.check_invariants(), Ok(()));
    DerivedArena {
        arena,
        kept: eligible.kept,
    }
}

/// Produces the paper's **filtered trace**: drops every *sharing* client
/// whose IP or user id collides with another client's, keeping
/// free-riders.
///
/// Rationale: an alias pair would count one human twice and inflate
/// clustering (a peer trivially "shares interests" with its own alias).
/// Free-riding aliases carry no files, so they are harmless and the paper
/// keeps them — and indeed observes that the free-rider *fraction* drops
/// from 84 % to 70 % after filtering.
pub fn filter(trace: &Trace) -> DerivedTrace {
    let static_caches = trace.static_caches();
    let mut by_ip: HashMap<u32, u32> = HashMap::new();
    let mut by_uid: HashMap<[u8; 16], u32> = HashMap::new();
    for peer in &trace.peers {
        *by_ip.entry(peer.ip).or_insert(0) += 1;
        *by_uid.entry(peer.uid.0).or_insert(0) += 1;
    }
    retain_peers(trace, |p| {
        let info = &trace.peers[p.index()];
        let is_free_rider = static_caches[p.index()].is_empty();
        let aliased = by_ip[&info.ip] > 1 || by_uid[&info.uid.0] > 1;
        is_free_rider || !aliased
    })
}

/// Outcome of a [`filter_streaming`] pass.
#[derive(Clone, Debug)]
pub struct StreamedFilter {
    /// `kept[i]` is the source-trace id of the output trace's peer `i`
    /// — the same mapping [`filter`] reports in [`DerivedTrace::kept`].
    pub kept: Vec<PeerId>,
    /// Day sections written to the output.
    pub days: u32,
}

/// The streaming `full → filtered` pass: reads a binary trace
/// day-at-a-time and writes the filtered binary trace, equal to what
/// the in-memory [`filter`] would produce, without ever materializing
/// either whole trace.
///
/// Two passes over `input`:
///
/// 1. stream every day accumulating one bit per peer (*did this client
///    ever share a file?*) — free-rider status needs the full period;
/// 2. stream again, remapping each snapshot to the kept peers and
///    appending it to `output`.
///
/// Peak resident memory is the intern tables plus **one**
/// [`DaySnapshot`], not the trace: the paper-scale bottleneck was
/// holding all 56 days × 1.16 M caches at once.
pub fn filter_streaming(input: &Path, output: &Path) -> Result<StreamedFilter, TraceIoError> {
    const DROPPED: u32 = u32::MAX;
    // Pass 1: who ever shared? (The alias counts come from the peer
    // table, which the reader loads up front.) Days stream through in
    // CSR form — no per-cache allocations on either pass.
    let mut pass1 = TraceReader::open(input)?;
    let mut shared = vec![false; pass1.peers().len()];
    while let Some(day) = pass1.next_day_arena()? {
        for (peer, row) in day.iter() {
            if !row.is_empty() {
                shared[peer as usize] = true;
            }
        }
    }

    let mut by_ip: HashMap<u32, u32> = HashMap::new();
    let mut by_uid: HashMap<[u8; 16], u32> = HashMap::new();
    for peer in pass1.peers() {
        *by_ip.entry(peer.ip).or_insert(0) += 1;
        *by_uid.entry(peer.uid.0).or_insert(0) += 1;
    }
    let mut kept: Vec<PeerId> = Vec::new();
    let mut remap: Vec<u32> = vec![DROPPED; pass1.peers().len()];
    let mut peers: Vec<PeerInfo> = Vec::new();
    for (idx, info) in pass1.peers().iter().enumerate() {
        let aliased = by_ip[&info.ip] > 1 || by_uid[&info.uid.0] > 1;
        if !shared[idx] || !aliased {
            remap[idx] = kept.len() as u32;
            kept.push(PeerId(idx as u32));
            peers.push(info.clone());
        }
    }

    // Pass 2: remap each CSR day and stream it out. Dense remapping
    // preserves relative order, so each filtered day stays sorted by
    // the new ids.
    let files = pass1.files().to_vec();
    drop(pass1);
    let mut pass2 = TraceReader::open(input)?;
    let mut writer = TraceWriter::create(output)?;
    let mut days = 0u32;
    let mut out = DayArena::new(0);
    while let Some(day) = pass2.next_day_arena()? {
        out.day = day.day;
        out.peers.clear();
        out.entries.clear();
        out.offsets.clear();
        out.offsets.push(0);
        for i in 0..day.peers.len() {
            let new = remap[day.peers[i] as usize];
            if new != DROPPED {
                out.peers.push(new);
                out.entries.extend_from_slice(day.row(i));
                out.offsets.push(out.entries.len() as u32);
            }
        }
        writer.write_day_arena(&out)?;
        days += 1;
    }
    writer.finish(&files, &peers)?;
    Ok(StreamedFilter { kept, days })
}

/// Produces the paper's **extrapolated trace**.
///
/// Keeps peers meeting the [`ExtrapolateConfig`] thresholds, then for each
/// retained peer fills every *missed* day strictly between two
/// observations with the intersection of the surrounding observed caches.
/// Days before the first or after the last observation stay absent.
///
/// The output trace has one snapshot per day in the full observation
/// range (even if empty), matching how the paper plots per-day series.
pub fn extrapolate(trace: &Trace, config: ExtrapolateConfig) -> DerivedTrace {
    let obs_days = trace.observation_days();
    let eligible = retain_peers(trace, |p| {
        let days = &obs_days[p.index()];
        days.len() >= config.min_snapshots
            && days.last().copied().unwrap_or(0) - days.first().copied().unwrap_or(0)
                >= config.min_span_days
    });

    let (Some(first), Some(last)) = (eligible.trace.first_day(), eligible.trace.last_day()) else {
        return eligible; // No snapshots at all; nothing to extrapolate.
    };

    // Per-peer observed (day, cache) series, in day order.
    let mut series: Vec<Vec<(u32, &Vec<FileRef>)>> = vec![Vec::new(); eligible.trace.peers.len()];
    for snap in &eligible.trace.days {
        for (peer, cache) in &snap.caches {
            series[peer.index()].push((snap.day, cache));
        }
    }

    let mut days: Vec<DaySnapshot> = (first..=last).map(DaySnapshot::new).collect();
    for (peer_idx, obs) in series.iter().enumerate() {
        let peer = PeerId(peer_idx as u32);
        for pair in obs.windows(2) {
            let (day_a, cache_a) = pair[0];
            let (day_b, cache_b) = pair[1];
            // Pessimistic fill: the intersection of the two surrounding
            // observations. Both inputs are sorted, so merge-intersect.
            let inter = sorted_intersection(cache_a, cache_b);
            for day in day_a + 1..day_b {
                days[(day - first) as usize].insert(peer, inter.clone());
            }
        }
        for (day, cache) in obs {
            days[(day - first) as usize].insert(peer, cache.to_vec());
        }
    }

    let trace = Trace {
        files: eligible.trace.files.clone(),
        peers: eligible.trace.peers.clone(),
        days,
    };
    debug_assert_eq!(trace.check_invariants(), Ok(()));
    DerivedTrace {
        trace,
        kept: eligible.kept,
    }
}

/// Merge-intersects two sorted, deduplicated slices.
pub fn sorted_intersection(a: &[FileRef], b: &[FileRef]) -> Vec<FileRef> {
    let mut out = Vec::new();
    sorted_intersection_into(a, b, &mut out);
    out
}

/// Size-ratio cutoff above which the intersection kernels switch from
/// the linear two-pointer merge to galloping search: past roughly this
/// skew, `short * log2(long)` comparisons beat `short + long`.
const GALLOP_CUTOFF: usize = 16;

/// Exponential (galloping) lower-bound search: the index of the first
/// element of `hay` (sorted) that is `>= needle`, assuming the caller
/// already knows the answer is `>= lo`. Doubling steps from `lo` keep
/// the probe count logarithmic in the *distance advanced*, not in
/// `hay.len()`, so a full intersection stays `O(short * log(long))`.
fn gallop_lower_bound(hay: &[FileRef], lo: usize, needle: FileRef) -> usize {
    let mut step = 1;
    let mut hi = lo;
    while hi < hay.len() && hay[hi] < needle {
        hi += step;
        step *= 2;
    }
    let lo = hi.saturating_sub(step / 2).max(lo);
    let hi = hi.min(hay.len());
    lo + hay[lo..hi].partition_point(|&x| x < needle)
}

/// Merge-intersects two sorted, deduplicated slices into a caller-owned
/// buffer (cleared first) — the allocation-free form the extrapolation
/// hot path threads through its per-worker scratch.
///
/// Balanced inputs take the linear two-pointer merge; when one side is
/// more than [`GALLOP_CUTOFF`]× longer (a peer's 6-file cache against a
/// blockbuster row, say) the short side gallops through the long one
/// instead, turning the cost from `O(short + long)` into
/// `O(short * log(long))`.
pub fn sorted_intersection_into(a: &[FileRef], b: &[FileRef], out: &mut Vec<FileRef>) {
    out.clear();
    intersect_sorted(a, b, |f| out.push(f));
}

/// Counts elements common to two sorted, deduplicated slices without
/// allocating. Same gallop-vs-merge selection as
/// [`sorted_intersection_into`].
pub fn sorted_intersection_len(a: &[FileRef], b: &[FileRef]) -> usize {
    let mut count = 0;
    intersect_sorted(a, b, |_| count += 1);
    count
}

/// The shared intersection core: picks merge vs gallop by size ratio
/// and emits each common element, in ascending order, exactly once.
#[inline]
fn intersect_sorted(a: &[FileRef], b: &[FileRef], mut emit: impl FnMut(FileRef)) {
    // Gallop with the *short* side driving; symmetric cases swap.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.len() * GALLOP_CUTOFF < long.len() {
        let mut lo = 0;
        for &needle in short {
            lo = gallop_lower_bound(long, lo, needle);
            if lo == long.len() {
                return;
            }
            if long[lo] == needle {
                emit(needle);
                lo += 1;
            }
        }
        return;
    }
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                emit(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CountryCode, FileInfo, PeerInfo, TraceBuilder};
    use edonkey_proto::md4::Md4;
    use edonkey_proto::query::FileKind;

    fn file_info(n: u64) -> FileInfo {
        FileInfo {
            id: Md4::digest(&n.to_le_bytes()),
            size: 1000,
            kind: FileKind::Audio,
        }
    }

    fn peer_info(n: u64, ip: u32) -> PeerInfo {
        PeerInfo {
            uid: Md4::digest(format!("peer{n}").as_bytes()),
            ip,
            country: CountryCode::new("FR"),
            asn: 3215,
        }
    }

    /// Builds a trace where:
    /// * p0 and p1 share an IP and both share files (both dropped),
    /// * p2 shares the IP but is a free-rider (kept),
    /// * p3 is clean and sharing (kept).
    fn aliased_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let p0 = b.intern_peer(peer_info(0, 99));
        let p1 = b.intern_peer(peer_info(1, 99));
        let p2 = b.intern_peer(peer_info(2, 99));
        let p3 = b.intern_peer(peer_info(3, 7));
        let f = b.intern_file(file_info(1));
        b.observe(350, p0, vec![f]);
        b.observe(350, p1, vec![f]);
        b.observe(350, p2, vec![]);
        b.observe(350, p3, vec![f]);
        b.finish()
    }

    #[test]
    fn filter_drops_sharing_aliases_keeps_free_riders() {
        let trace = aliased_trace();
        let derived = filter(&trace);
        assert_eq!(derived.kept, vec![PeerId(2), PeerId(3)]);
        assert_eq!(derived.trace.peers.len(), 2);
        // The kept sharer's cache survives under its new id.
        let snap = derived.trace.snapshot(350).unwrap();
        assert_eq!(snap.cache_of(PeerId(1)).unwrap().len(), 1);
        assert!(snap.cache_of(PeerId(0)).unwrap().is_empty());
    }

    #[test]
    fn filter_detects_uid_aliases_too() {
        // Same uid observed from two IPs: interning collapses it into one
        // peer, so simulate by distinct uids but equal IP handled above;
        // here check a duplicated uid constructed manually.
        let mut trace = aliased_trace();
        // Give p3 the same uid as p0 (bypassing the builder).
        trace.peers[3].uid = trace.peers[0].uid;
        let derived = filter(&trace);
        // Now every sharer is aliased; only the free-rider remains.
        assert_eq!(derived.kept, vec![PeerId(2)]);
    }

    #[test]
    fn streaming_filter_matches_in_memory_filter() {
        let mut trace = aliased_trace();
        // A second day with a different mix, to exercise multi-day streams.
        let mut extra = DaySnapshot::new(351);
        extra.insert(PeerId(1), vec![FileRef(0)]);
        extra.insert(PeerId(3), vec![]);
        trace.days.push(extra);
        assert_eq!(trace.check_invariants(), Ok(()));

        let dir = std::env::temp_dir().join("edonkey-pipeline-stream");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("full.edt");
        let output = dir.join("filtered.edt");
        crate::io::save_bin(&trace, &input).unwrap();

        let streamed = filter_streaming(&input, &output).unwrap();
        let in_memory = filter(&trace);
        assert_eq!(streamed.kept, in_memory.kept);
        assert_eq!(streamed.days as usize, trace.days.len());
        assert_eq!(crate::io::load_bin(&output).unwrap(), in_memory.trace);
    }

    fn observed(b: &mut TraceBuilder, peer: PeerId, days_caches: &[(u32, Vec<FileRef>)]) {
        for (day, cache) in days_caches {
            b.observe(*day, peer, cache.clone());
        }
    }

    #[test]
    fn extrapolate_selects_by_snapshots_and_span() {
        let mut b = TraceBuilder::new();
        let f = b.intern_file(file_info(1));
        // Good peer: 5 snapshots over 12 days.
        let good = b.intern_peer(peer_info(0, 1));
        observed(
            &mut b,
            good,
            &[
                (350, vec![f]),
                (353, vec![f]),
                (356, vec![f]),
                (359, vec![f]),
                (362, vec![f]),
            ],
        );
        // Too few snapshots.
        let few = b.intern_peer(peer_info(1, 2));
        observed(&mut b, few, &[(350, vec![f]), (362, vec![f])]);
        // Enough snapshots, span too short.
        let short = b.intern_peer(peer_info(2, 3));
        observed(
            &mut b,
            short,
            &[
                (350, vec![f]),
                (351, vec![f]),
                (352, vec![f]),
                (353, vec![f]),
                (354, vec![f]),
            ],
        );
        let trace = b.finish();
        let derived = extrapolate(&trace, ExtrapolateConfig::default());
        assert_eq!(derived.kept, vec![good]);
    }

    #[test]
    fn extrapolate_fills_gaps_with_intersection() {
        let mut b = TraceBuilder::new();
        let f1 = b.intern_file(file_info(1));
        let f2 = b.intern_file(file_info(2));
        let f3 = b.intern_file(file_info(3));
        let p = b.intern_peer(peer_info(0, 1));
        // Observations at 350 and 353 share {f1}; at 353 and 363 share {f1,f3}.
        observed(
            &mut b,
            p,
            &[
                (350, vec![f1, f2]),
                (353, vec![f1, f3]),
                (356, vec![f1, f3]),
                (360, vec![f1, f2, f3]),
                (363, vec![f1, f3]),
            ],
        );
        let trace = b.finish();
        let derived = extrapolate(&trace, ExtrapolateConfig::default());
        let t = &derived.trace;
        let p = PeerId(0);
        // Observed days keep their caches.
        assert_eq!(t.snapshot(350).unwrap().cache_of(p).unwrap(), &[f1, f2]);
        // Missed days 351–352 get the intersection {f1}.
        assert_eq!(t.snapshot(351).unwrap().cache_of(p).unwrap(), &[f1]);
        assert_eq!(t.snapshot(352).unwrap().cache_of(p).unwrap(), &[f1]);
        // Missed days 357–359 get {f1, f3}.
        assert_eq!(t.snapshot(358).unwrap().cache_of(p).unwrap(), &[f1, f3]);
        // Every day in range exists as a snapshot.
        assert_eq!(t.days.len(), (363 - 350 + 1) as usize);
    }

    #[test]
    fn extrapolation_is_pessimistic() {
        // The filled cache is always a subset of both surrounding
        // observations.
        let mut b = TraceBuilder::new();
        let files: Vec<FileRef> = (0..20).map(|n| b.intern_file(file_info(n))).collect();
        let p = b.intern_peer(peer_info(0, 1));
        observed(
            &mut b,
            p,
            &[
                (350, files[0..10].to_vec()),
                (355, files[5..15].to_vec()),
                (361, files[10..20].to_vec()),
            ],
        );
        let trace = b.finish();
        let derived = extrapolate(
            &trace,
            ExtrapolateConfig {
                min_snapshots: 3,
                min_span_days: 10,
            },
        );
        for day in 351..355 {
            let cache = derived
                .trace
                .snapshot(day)
                .unwrap()
                .cache_of(PeerId(0))
                .unwrap();
            assert_eq!(cache, &files[5..10]);
        }
        for day in 356..361 {
            let cache = derived
                .trace
                .snapshot(day)
                .unwrap()
                .cache_of(PeerId(0))
                .unwrap();
            assert_eq!(cache, &files[10..15]);
        }
    }

    #[test]
    fn extrapolate_empty_trace_is_empty() {
        let trace = Trace::new();
        let derived = extrapolate(&trace, ExtrapolateConfig::default());
        assert!(derived.trace.peers.is_empty());
        assert!(derived.trace.days.is_empty());
    }

    #[test]
    fn intersection_helpers_agree() {
        let a = vec![FileRef(1), FileRef(3), FileRef(5), FileRef(9)];
        let b = vec![FileRef(2), FileRef(3), FileRef(9), FileRef(10)];
        let inter = sorted_intersection(&a, &b);
        assert_eq!(inter, vec![FileRef(3), FileRef(9)]);
        assert_eq!(sorted_intersection_len(&a, &b), 2);
        assert_eq!(sorted_intersection_len(&a, &[]), 0);
        assert_eq!(sorted_intersection(&[], &b), Vec::<FileRef>::new());
    }

    #[test]
    fn galloping_intersection_matches_merge_on_skewed_inputs() {
        // Long side crosses the gallop cutoff; exercise the short side
        // in either argument position, at both ends of the long side,
        // and with runs that force multi-doubling gallops.
        let long: Vec<FileRef> = (0..2000).map(|k| FileRef(2 * k)).collect();
        let shorts: Vec<Vec<FileRef>> = vec![
            vec![FileRef(0), FileRef(2), FileRef(3998)],
            vec![FileRef(1), FileRef(1999), FileRef(3999)], // all misses
            vec![FileRef(1500), FileRef(1501), FileRef(1502)],
            (0..40).map(|k| FileRef(100 * k)).collect(),
            vec![FileRef(5000)], // past the end
        ];
        for short in &shorts {
            let naive: Vec<FileRef> = short
                .iter()
                .copied()
                .filter(|f| long.binary_search(f).is_ok())
                .collect();
            assert_eq!(sorted_intersection(short, &long), naive, "{short:?}");
            assert_eq!(sorted_intersection(&long, short), naive, "{short:?}");
            assert_eq!(sorted_intersection_len(short, &long), naive.len());
            assert_eq!(sorted_intersection_len(&long, short), naive.len());
        }
    }

    #[test]
    fn intersection_into_reuses_buffer() {
        let a = vec![FileRef(1), FileRef(3), FileRef(5)];
        let b = vec![FileRef(3), FileRef(5), FileRef(7)];
        let mut scratch = vec![FileRef(99); 8];
        sorted_intersection_into(&a, &b, &mut scratch);
        assert_eq!(scratch, vec![FileRef(3), FileRef(5)]);
        sorted_intersection_into(&a, &[], &mut scratch);
        assert!(scratch.is_empty());
    }

    /// A trace exercising every pipeline branch: aliases, free-riders,
    /// regular and irregular clients, multi-day gaps of both widths.
    fn mixed_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let files: Vec<FileRef> = (0..12).map(|n| b.intern_file(file_info(n))).collect();
        let regular = b.intern_peer(peer_info(0, 1));
        observed(
            &mut b,
            regular,
            &[
                (350, files[0..6].to_vec()),
                (353, files[2..8].to_vec()),
                (356, files[2..8].to_vec()),
                (358, files[4..12].to_vec()),
                (362, files[4..10].to_vec()),
            ],
        );
        let alias_a = b.intern_peer(peer_info(1, 9));
        let alias_b = b.intern_peer(peer_info(2, 9));
        observed(&mut b, alias_a, &[(350, files[0..2].to_vec())]);
        observed(&mut b, alias_b, &[(351, files[1..3].to_vec())]);
        let free_rider = b.intern_peer(peer_info(3, 9));
        observed(&mut b, free_rider, &[(350, vec![]), (355, vec![])]);
        let irregular = b.intern_peer(peer_info(4, 4));
        observed(
            &mut b,
            irregular,
            &[(352, files[0..4].to_vec()), (354, files[0..4].to_vec())],
        );
        b.finish()
    }

    #[test]
    fn arena_filter_matches_row_filter() {
        let trace = mixed_trace();
        let arena = TraceArena::from_trace(&trace);
        let row = filter(&trace);
        let csr = filter_arena(&arena);
        assert_eq!(csr.kept, row.kept);
        assert_eq!(csr.to_derived_trace().trace, row.trace);
    }

    #[test]
    fn arena_retain_peers_matches_row() {
        let trace = mixed_trace();
        let arena = TraceArena::from_trace(&trace);
        let keep = |p: PeerId| p.0 % 2 == 0;
        let row = retain_peers(&trace, keep);
        let csr = retain_peers_arena(&arena, keep);
        assert_eq!(csr.kept, row.kept);
        assert_eq!(csr.to_derived_trace().trace, row.trace);
    }

    #[test]
    fn arena_extrapolate_matches_row_for_any_thread_count() {
        let trace = mixed_trace();
        let arena = TraceArena::from_trace(&trace);
        let row = extrapolate(&trace, ExtrapolateConfig::default());
        for threads in [1, 2, 3, 8] {
            let csr = extrapolate_arena_with_threads(&arena, ExtrapolateConfig::default(), threads);
            assert_eq!(csr.kept, row.kept, "threads={threads}");
            assert_eq!(csr.to_derived_trace().trace, row.trace, "threads={threads}");
        }
    }

    #[test]
    fn arena_extrapolate_empty_trace_is_empty() {
        let arena = TraceArena::from_trace(&Trace::new());
        let csr = extrapolate_arena(&arena, ExtrapolateConfig::default());
        assert!(csr.kept.is_empty());
        assert!(csr.arena.days.is_empty());
    }

    #[test]
    fn arena_pipeline_composes_like_row_pipeline() {
        // filter → extrapolate, both lanes, end to end.
        let trace = mixed_trace();
        let row = extrapolate(&filter(&trace).trace, ExtrapolateConfig::default());
        let arena = TraceArena::from_trace(&trace);
        let filtered = filter_arena(&arena);
        let csr = extrapolate_arena(&filtered.arena, ExtrapolateConfig::default());
        assert_eq!(csr.kept, row.kept);
        assert_eq!(csr.to_derived_trace().trace, row.trace);
    }
}
