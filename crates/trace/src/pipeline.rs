//! The full → filtered → extrapolated trace pipeline of Section 2.3.
//!
//! * **Filtering** removes client aliasing: *"Clients sometimes change
//!   either their IP address (DHCP) or unique identifier by reinstalling
//!   the software… we removed all clients sharing either the same IP
//!   address or the same unique identifier (and kept the free riders)."*
//! * **Extrapolation** keeps clients *"connected at least 5 times over the
//!   period, with at least 10 days between the first and the last
//!   connection"* and fills every missed day in between with *"the
//!   intersection of the files at the previous and at the subsequent
//!   connection"* — a deliberately pessimistic reconstruction.

use std::collections::HashMap;
use std::path::Path;

use crate::io::bin::{TraceReader, TraceWriter};
use crate::io::TraceIoError;
use crate::model::{DaySnapshot, FileRef, PeerId, PeerInfo, Trace};

/// Knobs for [`extrapolate`], defaulting to the paper's values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExtrapolateConfig {
    /// Minimum number of successful snapshots per client (paper: 5).
    pub min_snapshots: usize,
    /// Minimum span in days between first and last snapshot (paper: 10).
    pub min_span_days: u32,
}

impl Default for ExtrapolateConfig {
    fn default() -> Self {
        ExtrapolateConfig {
            min_snapshots: 5,
            min_span_days: 10,
        }
    }
}

/// Result of a pipeline stage: the derived trace plus the mapping from new
/// peer ids back to the source trace's ids.
///
/// Analyses that compare stages (e.g. Table 1) need to know which original
/// client each retained client was.
#[derive(Clone, Debug)]
pub struct DerivedTrace {
    /// The derived trace, with peers re-indexed densely.
    pub trace: Trace,
    /// `kept[i]` is the source-trace id of the derived trace's peer `i`.
    pub kept: Vec<PeerId>,
}

/// Restricts a trace to a subset of its peers, re-indexing them densely
/// (file refs are preserved, so file-level series stay comparable across
/// stages).
pub fn retain_peers(trace: &Trace, keep: impl Fn(PeerId) -> bool) -> DerivedTrace {
    let mut kept = Vec::new();
    let mut remap: HashMap<PeerId, PeerId> = HashMap::new();
    for idx in 0..trace.peers.len() {
        let old = PeerId(idx as u32);
        if keep(old) {
            let new = PeerId(kept.len() as u32);
            remap.insert(old, new);
            kept.push(old);
        }
    }
    let peers = kept
        .iter()
        .map(|p| trace.peers[p.index()].clone())
        .collect();
    let mut days = Vec::with_capacity(trace.days.len());
    for snap in &trace.days {
        let caches: Vec<(PeerId, Vec<FileRef>)> = snap
            .caches
            .iter()
            .filter_map(|(p, c)| remap.get(p).map(|np| (*np, c.clone())))
            .collect();
        // Dense remapping preserves relative order, so `caches` stays
        // sorted by the new ids.
        days.push(DaySnapshot {
            day: snap.day,
            caches,
        });
    }
    let trace = Trace {
        files: trace.files.clone(),
        peers,
        days,
    };
    debug_assert_eq!(trace.check_invariants(), Ok(()));
    DerivedTrace { trace, kept }
}

/// Produces the paper's **filtered trace**: drops every *sharing* client
/// whose IP or user id collides with another client's, keeping
/// free-riders.
///
/// Rationale: an alias pair would count one human twice and inflate
/// clustering (a peer trivially "shares interests" with its own alias).
/// Free-riding aliases carry no files, so they are harmless and the paper
/// keeps them — and indeed observes that the free-rider *fraction* drops
/// from 84 % to 70 % after filtering.
pub fn filter(trace: &Trace) -> DerivedTrace {
    let static_caches = trace.static_caches();
    let mut by_ip: HashMap<u32, u32> = HashMap::new();
    let mut by_uid: HashMap<[u8; 16], u32> = HashMap::new();
    for peer in &trace.peers {
        *by_ip.entry(peer.ip).or_insert(0) += 1;
        *by_uid.entry(peer.uid.0).or_insert(0) += 1;
    }
    retain_peers(trace, |p| {
        let info = &trace.peers[p.index()];
        let is_free_rider = static_caches[p.index()].is_empty();
        let aliased = by_ip[&info.ip] > 1 || by_uid[&info.uid.0] > 1;
        is_free_rider || !aliased
    })
}

/// Outcome of a [`filter_streaming`] pass.
#[derive(Clone, Debug)]
pub struct StreamedFilter {
    /// `kept[i]` is the source-trace id of the output trace's peer `i`
    /// — the same mapping [`filter`] reports in [`DerivedTrace::kept`].
    pub kept: Vec<PeerId>,
    /// Day sections written to the output.
    pub days: u32,
}

/// The streaming `full → filtered` pass: reads a binary trace
/// day-at-a-time and writes the filtered binary trace, equal to what
/// the in-memory [`filter`] would produce, without ever materializing
/// either whole trace.
///
/// Two passes over `input`:
///
/// 1. stream every day accumulating one bit per peer (*did this client
///    ever share a file?*) — free-rider status needs the full period;
/// 2. stream again, remapping each snapshot to the kept peers and
///    appending it to `output`.
///
/// Peak resident memory is the intern tables plus **one**
/// [`DaySnapshot`], not the trace: the paper-scale bottleneck was
/// holding all 56 days × 1.16 M caches at once.
pub fn filter_streaming(input: &Path, output: &Path) -> Result<StreamedFilter, TraceIoError> {
    // Pass 1: who ever shared? (The alias counts come from the peer
    // table, which the reader loads up front.)
    let mut pass1 = TraceReader::open(input)?;
    let mut shared = vec![false; pass1.peers().len()];
    while let Some(day) = pass1.next_day()? {
        for (peer, cache) in &day.caches {
            if !cache.is_empty() {
                shared[peer.index()] = true;
            }
        }
    }

    let mut by_ip: HashMap<u32, u32> = HashMap::new();
    let mut by_uid: HashMap<[u8; 16], u32> = HashMap::new();
    for peer in pass1.peers() {
        *by_ip.entry(peer.ip).or_insert(0) += 1;
        *by_uid.entry(peer.uid.0).or_insert(0) += 1;
    }
    let mut kept: Vec<PeerId> = Vec::new();
    let mut remap: Vec<Option<PeerId>> = vec![None; pass1.peers().len()];
    let mut peers: Vec<PeerInfo> = Vec::new();
    for (idx, info) in pass1.peers().iter().enumerate() {
        let aliased = by_ip[&info.ip] > 1 || by_uid[&info.uid.0] > 1;
        if !shared[idx] || !aliased {
            remap[idx] = Some(PeerId(kept.len() as u32));
            kept.push(PeerId(idx as u32));
            peers.push(info.clone());
        }
    }

    // Pass 2: remap and stream out. Dense remapping preserves relative
    // order, so each filtered snapshot stays sorted by the new ids.
    let files = pass1.files().to_vec();
    drop(pass1);
    let mut pass2 = TraceReader::open(input)?;
    let mut writer = TraceWriter::create(output)?;
    let mut days = 0u32;
    while let Some(day) = pass2.next_day()? {
        let caches: Vec<(PeerId, Vec<FileRef>)> = day
            .caches
            .iter()
            .filter_map(|(p, c)| remap[p.index()].map(|np| (np, c.clone())))
            .collect();
        writer.write_day(&DaySnapshot {
            day: day.day,
            caches,
        })?;
        days += 1;
    }
    writer.finish(&files, &peers)?;
    Ok(StreamedFilter { kept, days })
}

/// Produces the paper's **extrapolated trace**.
///
/// Keeps peers meeting the [`ExtrapolateConfig`] thresholds, then for each
/// retained peer fills every *missed* day strictly between two
/// observations with the intersection of the surrounding observed caches.
/// Days before the first or after the last observation stay absent.
///
/// The output trace has one snapshot per day in the full observation
/// range (even if empty), matching how the paper plots per-day series.
pub fn extrapolate(trace: &Trace, config: ExtrapolateConfig) -> DerivedTrace {
    let obs_days = trace.observation_days();
    let eligible = retain_peers(trace, |p| {
        let days = &obs_days[p.index()];
        days.len() >= config.min_snapshots
            && days.last().copied().unwrap_or(0) - days.first().copied().unwrap_or(0)
                >= config.min_span_days
    });

    let (Some(first), Some(last)) = (eligible.trace.first_day(), eligible.trace.last_day()) else {
        return eligible; // No snapshots at all; nothing to extrapolate.
    };

    // Per-peer observed (day, cache) series, in day order.
    let mut series: Vec<Vec<(u32, &Vec<FileRef>)>> = vec![Vec::new(); eligible.trace.peers.len()];
    for snap in &eligible.trace.days {
        for (peer, cache) in &snap.caches {
            series[peer.index()].push((snap.day, cache));
        }
    }

    let mut days: Vec<DaySnapshot> = (first..=last).map(DaySnapshot::new).collect();
    for (peer_idx, obs) in series.iter().enumerate() {
        let peer = PeerId(peer_idx as u32);
        for pair in obs.windows(2) {
            let (day_a, cache_a) = pair[0];
            let (day_b, cache_b) = pair[1];
            // Pessimistic fill: the intersection of the two surrounding
            // observations. Both inputs are sorted, so merge-intersect.
            let inter = sorted_intersection(cache_a, cache_b);
            for day in day_a + 1..day_b {
                days[(day - first) as usize].insert(peer, inter.clone());
            }
        }
        for (day, cache) in obs {
            days[(day - first) as usize].insert(peer, cache.to_vec());
        }
    }

    let trace = Trace {
        files: eligible.trace.files.clone(),
        peers: eligible.trace.peers.clone(),
        days,
    };
    debug_assert_eq!(trace.check_invariants(), Ok(()));
    DerivedTrace {
        trace,
        kept: eligible.kept,
    }
}

/// Merge-intersects two sorted, deduplicated slices.
pub fn sorted_intersection(a: &[FileRef], b: &[FileRef]) -> Vec<FileRef> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Counts elements common to two sorted, deduplicated slices without
/// allocating.
pub fn sorted_intersection_len(a: &[FileRef], b: &[FileRef]) -> usize {
    let mut count = 0;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CountryCode, FileInfo, PeerInfo, TraceBuilder};
    use edonkey_proto::md4::Md4;
    use edonkey_proto::query::FileKind;

    fn file_info(n: u64) -> FileInfo {
        FileInfo {
            id: Md4::digest(&n.to_le_bytes()),
            size: 1000,
            kind: FileKind::Audio,
        }
    }

    fn peer_info(n: u64, ip: u32) -> PeerInfo {
        PeerInfo {
            uid: Md4::digest(format!("peer{n}").as_bytes()),
            ip,
            country: CountryCode::new("FR"),
            asn: 3215,
        }
    }

    /// Builds a trace where:
    /// * p0 and p1 share an IP and both share files (both dropped),
    /// * p2 shares the IP but is a free-rider (kept),
    /// * p3 is clean and sharing (kept).
    fn aliased_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let p0 = b.intern_peer(peer_info(0, 99));
        let p1 = b.intern_peer(peer_info(1, 99));
        let p2 = b.intern_peer(peer_info(2, 99));
        let p3 = b.intern_peer(peer_info(3, 7));
        let f = b.intern_file(file_info(1));
        b.observe(350, p0, vec![f]);
        b.observe(350, p1, vec![f]);
        b.observe(350, p2, vec![]);
        b.observe(350, p3, vec![f]);
        b.finish()
    }

    #[test]
    fn filter_drops_sharing_aliases_keeps_free_riders() {
        let trace = aliased_trace();
        let derived = filter(&trace);
        assert_eq!(derived.kept, vec![PeerId(2), PeerId(3)]);
        assert_eq!(derived.trace.peers.len(), 2);
        // The kept sharer's cache survives under its new id.
        let snap = derived.trace.snapshot(350).unwrap();
        assert_eq!(snap.cache_of(PeerId(1)).unwrap().len(), 1);
        assert!(snap.cache_of(PeerId(0)).unwrap().is_empty());
    }

    #[test]
    fn filter_detects_uid_aliases_too() {
        // Same uid observed from two IPs: interning collapses it into one
        // peer, so simulate by distinct uids but equal IP handled above;
        // here check a duplicated uid constructed manually.
        let mut trace = aliased_trace();
        // Give p3 the same uid as p0 (bypassing the builder).
        trace.peers[3].uid = trace.peers[0].uid;
        let derived = filter(&trace);
        // Now every sharer is aliased; only the free-rider remains.
        assert_eq!(derived.kept, vec![PeerId(2)]);
    }

    #[test]
    fn streaming_filter_matches_in_memory_filter() {
        let mut trace = aliased_trace();
        // A second day with a different mix, to exercise multi-day streams.
        let mut extra = DaySnapshot::new(351);
        extra.insert(PeerId(1), vec![FileRef(0)]);
        extra.insert(PeerId(3), vec![]);
        trace.days.push(extra);
        assert_eq!(trace.check_invariants(), Ok(()));

        let dir = std::env::temp_dir().join("edonkey-pipeline-stream");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("full.edt");
        let output = dir.join("filtered.edt");
        crate::io::save_bin(&trace, &input).unwrap();

        let streamed = filter_streaming(&input, &output).unwrap();
        let in_memory = filter(&trace);
        assert_eq!(streamed.kept, in_memory.kept);
        assert_eq!(streamed.days as usize, trace.days.len());
        assert_eq!(crate::io::load_bin(&output).unwrap(), in_memory.trace);
    }

    fn observed(b: &mut TraceBuilder, peer: PeerId, days_caches: &[(u32, Vec<FileRef>)]) {
        for (day, cache) in days_caches {
            b.observe(*day, peer, cache.clone());
        }
    }

    #[test]
    fn extrapolate_selects_by_snapshots_and_span() {
        let mut b = TraceBuilder::new();
        let f = b.intern_file(file_info(1));
        // Good peer: 5 snapshots over 12 days.
        let good = b.intern_peer(peer_info(0, 1));
        observed(
            &mut b,
            good,
            &[
                (350, vec![f]),
                (353, vec![f]),
                (356, vec![f]),
                (359, vec![f]),
                (362, vec![f]),
            ],
        );
        // Too few snapshots.
        let few = b.intern_peer(peer_info(1, 2));
        observed(&mut b, few, &[(350, vec![f]), (362, vec![f])]);
        // Enough snapshots, span too short.
        let short = b.intern_peer(peer_info(2, 3));
        observed(
            &mut b,
            short,
            &[
                (350, vec![f]),
                (351, vec![f]),
                (352, vec![f]),
                (353, vec![f]),
                (354, vec![f]),
            ],
        );
        let trace = b.finish();
        let derived = extrapolate(&trace, ExtrapolateConfig::default());
        assert_eq!(derived.kept, vec![good]);
    }

    #[test]
    fn extrapolate_fills_gaps_with_intersection() {
        let mut b = TraceBuilder::new();
        let f1 = b.intern_file(file_info(1));
        let f2 = b.intern_file(file_info(2));
        let f3 = b.intern_file(file_info(3));
        let p = b.intern_peer(peer_info(0, 1));
        // Observations at 350 and 353 share {f1}; at 353 and 363 share {f1,f3}.
        observed(
            &mut b,
            p,
            &[
                (350, vec![f1, f2]),
                (353, vec![f1, f3]),
                (356, vec![f1, f3]),
                (360, vec![f1, f2, f3]),
                (363, vec![f1, f3]),
            ],
        );
        let trace = b.finish();
        let derived = extrapolate(&trace, ExtrapolateConfig::default());
        let t = &derived.trace;
        let p = PeerId(0);
        // Observed days keep their caches.
        assert_eq!(t.snapshot(350).unwrap().cache_of(p).unwrap(), &[f1, f2]);
        // Missed days 351–352 get the intersection {f1}.
        assert_eq!(t.snapshot(351).unwrap().cache_of(p).unwrap(), &[f1]);
        assert_eq!(t.snapshot(352).unwrap().cache_of(p).unwrap(), &[f1]);
        // Missed days 357–359 get {f1, f3}.
        assert_eq!(t.snapshot(358).unwrap().cache_of(p).unwrap(), &[f1, f3]);
        // Every day in range exists as a snapshot.
        assert_eq!(t.days.len(), (363 - 350 + 1) as usize);
    }

    #[test]
    fn extrapolation_is_pessimistic() {
        // The filled cache is always a subset of both surrounding
        // observations.
        let mut b = TraceBuilder::new();
        let files: Vec<FileRef> = (0..20).map(|n| b.intern_file(file_info(n))).collect();
        let p = b.intern_peer(peer_info(0, 1));
        observed(
            &mut b,
            p,
            &[
                (350, files[0..10].to_vec()),
                (355, files[5..15].to_vec()),
                (361, files[10..20].to_vec()),
            ],
        );
        let trace = b.finish();
        let derived = extrapolate(
            &trace,
            ExtrapolateConfig {
                min_snapshots: 3,
                min_span_days: 10,
            },
        );
        for day in 351..355 {
            let cache = derived
                .trace
                .snapshot(day)
                .unwrap()
                .cache_of(PeerId(0))
                .unwrap();
            assert_eq!(cache, &files[5..10]);
        }
        for day in 356..361 {
            let cache = derived
                .trace
                .snapshot(day)
                .unwrap()
                .cache_of(PeerId(0))
                .unwrap();
            assert_eq!(cache, &files[10..15]);
        }
    }

    #[test]
    fn extrapolate_empty_trace_is_empty() {
        let trace = Trace::new();
        let derived = extrapolate(&trace, ExtrapolateConfig::default());
        assert!(derived.trace.peers.is_empty());
        assert!(derived.trace.days.is_empty());
    }

    #[test]
    fn intersection_helpers_agree() {
        let a = vec![FileRef(1), FileRef(3), FileRef(5), FileRef(9)];
        let b = vec![FileRef(2), FileRef(3), FileRef(9), FileRef(10)];
        let inter = sorted_intersection(&a, &b);
        assert_eq!(inter, vec![FileRef(3), FileRef(9)]);
        assert_eq!(sorted_intersection_len(&a, &b), 2);
        assert_eq!(sorted_intersection_len(&a, &[]), 0);
        assert_eq!(sorted_intersection(&[], &b), Vec::<FileRef>::new());
    }
}
