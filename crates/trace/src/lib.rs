//! `edonkey-trace`: trace model, derivation pipeline, randomization and
//! I/O for the EuroSys'06 eDonkey reproduction.
//!
//! A [`model::Trace`] is the object the paper's crawler produces: intern
//! tables for files and peers plus one cache snapshot per browsed client
//! per day. From it the paper derives:
//!
//! * the **filtered** trace ([`pipeline::filter`]) — IP/uid aliases
//!   removed, used for all static analyses;
//! * the **extrapolated** trace ([`pipeline::extrapolate`]) — regular
//!   clients only, with missed days filled pessimistically, used for all
//!   dynamic analyses;
//! * **randomized** caches ([`randomize`]) — same generosity and
//!   popularity, all interest structure destroyed (the appendix
//!   algorithm), used as the null model in Figs. 14 and 21.
//!
//! # Examples
//!
//! ```
//! use edonkey_trace::model::{TraceBuilder, FileInfo, PeerInfo, CountryCode};
//! use edonkey_proto::{md4::Md4, query::FileKind};
//!
//! let mut b = TraceBuilder::new();
//! let p = b.intern_peer(PeerInfo {
//!     uid: Md4::digest(b"alice"), ip: 1, country: CountryCode::new("FR"), asn: 3215,
//! });
//! let f = b.intern_file(FileInfo {
//!     id: Md4::digest(b"song"), size: 4_000_000, kind: FileKind::Audio,
//! });
//! b.observe(350, p, vec![f]);
//! let trace = b.finish();
//! assert_eq!(trace.snapshot_count(), 1);
//! let filtered = edonkey_trace::pipeline::filter(&trace);
//! assert_eq!(filtered.trace.peers.len(), 1);
//! ```

pub mod compact;
pub mod io;
pub mod model;
pub mod ops;
pub mod par;
pub mod pipeline;
pub mod randomize;

pub use compact::{CacheArena, DayArena, TraceArena};
pub use io::{load_auto, TraceIoError, TraceReader, TraceWriter};
pub use model::{
    CountryCode, DaySnapshot, FileInfo, FileRef, PeerId, PeerInfo, Trace, TraceBuilder,
};
pub use par::{parallel_map, parallel_map_init, parallel_map_init_threads};
pub use pipeline::{
    extrapolate, extrapolate_arena, filter, filter_arena, filter_streaming, retain_peers_arena,
    DerivedArena, DerivedTrace, ExtrapolateConfig,
};
pub use randomize::{
    randomize_caches, recommended_iterations, ArenaShuffler, ShuffleCheckpoint, Shuffler, SwapStats,
};
