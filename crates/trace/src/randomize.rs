//! The appendix trace-randomization algorithm.
//!
//! Goal (quoting the paper): *"modify a collection of peer cache contents
//! so that the peer generosity (number of files cached per peer) and the
//! file popularity (number of replicas per file) are maintained, while any
//! other structure — in particular, interest-based clustering between
//! peers — is destroyed."*
//!
//! One iteration:
//! 1. pick a peer `u` with probability `|Cu| / Σ|Cw|`;
//! 2. pick a file `f` uniformly from `Cu`;
//! 3. likewise pick `(v, f')`;
//! 4. swap `f` and `f'` between the two caches — only if `f' ∉ Cu` and
//!    `f ∉ Cv`.
//!
//! Steps 1+2 together are exactly "pick a *replica* uniformly at random",
//! which is how [`Shuffler`] implements them: a flat replica array gives
//! O(1) sampling, and per-peer hash sets give O(1) membership tests, so a
//! full randomization pass is O(N log N) total.
//!
//! The paper proves `½·N·ln N` iterations suffice (`N` = total replicas);
//! [`recommended_iterations`] computes that bound and
//! [`randomize_caches`] applies it.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::Rng;

use crate::compact::CacheArena;
use crate::model::FileRef;

/// The paper's sufficient iteration count: `½ · N · ln N` for `N` total
/// replicas (at least 1 for tiny non-empty traces).
///
/// # Examples
///
/// ```
/// use edonkey_trace::randomize::recommended_iterations;
/// assert_eq!(recommended_iterations(0), 0);
/// // ½ · 1000 · ln 1000 ≈ 3454.
/// assert_eq!(recommended_iterations(1000), 3454);
/// ```
pub fn recommended_iterations(total_replicas: usize) -> u64 {
    if total_replicas < 2 {
        return if total_replicas == 0 { 0 } else { 1 };
    }
    let n = total_replicas as f64;
    (0.5 * n * n.ln()).ceil() as u64
}

/// Statistics from a randomization run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SwapStats {
    /// Iterations attempted (steps 1–3 executed).
    pub attempted: u64,
    /// Swaps actually performed (membership checks passed).
    pub performed: u64,
}

/// Incremental randomizer over a set of peer caches.
///
/// Owns the caches while shuffling; [`Shuffler::into_caches`] returns them
/// (each sorted) when done. Fig. 21 needs *partial* randomization — hit
/// rate as a function of swap count — which is why this is exposed as a
/// stateful object rather than a single function.
pub struct Shuffler {
    /// Cache contents, indexed by peer. Order within a cache is arbitrary
    /// while shuffling.
    caches: Vec<Vec<FileRef>>,
    /// Membership sets mirroring `caches`.
    members: Vec<HashSet<FileRef>>,
    /// Flat index of every replica as `(peer, slot)`.
    replicas: Vec<(u32, u32)>,
    stats: SwapStats,
}

impl Shuffler {
    /// Builds a shuffler over per-peer caches (entries need not be
    /// sorted; they must be duplicate-free per peer).
    ///
    /// # Panics
    ///
    /// Panics if a cache contains a duplicate entry: replica counts would
    /// silently change otherwise.
    pub fn new(caches: Vec<Vec<FileRef>>) -> Self {
        let mut replicas = Vec::with_capacity(caches.iter().map(Vec::len).sum());
        let mut members = Vec::with_capacity(caches.len());
        for (peer, cache) in caches.iter().enumerate() {
            let set: HashSet<FileRef> = cache.iter().copied().collect();
            assert_eq!(set.len(), cache.len(), "peer {peer} cache has duplicates");
            members.push(set);
            for slot in 0..cache.len() {
                replicas.push((peer as u32, slot as u32));
            }
        }
        Shuffler {
            caches,
            members,
            replicas,
            stats: SwapStats::default(),
        }
    }

    /// Total number of replicas `N`.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> SwapStats {
        self.stats
    }

    /// Runs `iterations` swap attempts.
    pub fn run(&mut self, iterations: u64, rng: &mut impl Rng) {
        if self.replicas.len() < 2 {
            // Nothing can ever swap; still record the attempts.
            self.stats.attempted += iterations;
            return;
        }
        for _ in 0..iterations {
            self.step(rng);
        }
    }

    /// Runs one swap attempt; returns whether a swap was performed.
    pub fn step(&mut self, rng: &mut impl Rng) -> bool {
        self.stats.attempted += 1;
        if self.replicas.len() < 2 {
            return false;
        }
        // Uniform replica picks implement the size-biased peer picks.
        let a = rng.gen_range(0..self.replicas.len());
        let b = rng.gen_range(0..self.replicas.len());
        let (pu, su) = self.replicas[a];
        let (pv, sv) = self.replicas[b];
        if pu == pv {
            // Swapping within one cache is a no-op (and the membership
            // guard below would reject it anyway).
            return false;
        }
        let f = self.caches[pu as usize][su as usize];
        let f2 = self.caches[pv as usize][sv as usize];
        if self.members[pu as usize].contains(&f2) || self.members[pv as usize].contains(&f) {
            return false;
        }
        self.caches[pu as usize][su as usize] = f2;
        self.caches[pv as usize][sv as usize] = f;
        self.members[pu as usize].remove(&f);
        self.members[pu as usize].insert(f2);
        self.members[pv as usize].remove(&f2);
        self.members[pv as usize].insert(f);
        self.stats.performed += 1;
        true
    }

    /// Read-only view of the current caches (unsorted).
    pub fn caches(&self) -> &[Vec<FileRef>] {
        &self.caches
    }

    /// Finishes shuffling, returning the caches sorted per peer.
    pub fn into_caches(mut self) -> Vec<Vec<FileRef>> {
        for cache in &mut self.caches {
            cache.sort_unstable();
        }
        self.caches
    }
}

/// Deterministic open-addressed set of `(peer, file)` replica pairs —
/// the arena-backed membership index behind [`ArenaShuffler`].
///
/// Keys are `peer << 32 | file`, hashed with a splitmix-style mixer and
/// probed linearly; deletions use backward-shift so no tombstones
/// accumulate over millions of swaps. The replica count is invariant
/// under swapping, so the table is sized once (2× occupancy, power of
/// two) and never rehashes. Everything is flat `u64`s: no per-peer
/// `HashSet`, no SipHash.
struct PairSet {
    slots: Vec<u64>,
    mask: usize,
}

const PAIR_EMPTY: u64 = u64::MAX;

/// The finalizer of splitmix64 — a full-avalanche mixer, so linear
/// probing sees well-spread hashes even for dense peer/file ids.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl PairSet {
    fn with_capacity(pairs: usize) -> Self {
        let cap = (pairs.max(1) * 2).next_power_of_two().max(16);
        PairSet {
            slots: vec![PAIR_EMPTY; cap],
            mask: cap - 1,
        }
    }

    fn key(peer: u32, file: FileRef) -> u64 {
        ((peer as u64) << 32) | file.0 as u64
    }

    fn contains(&self, peer: u32, file: FileRef) -> bool {
        let key = Self::key(peer, file);
        let mut i = mix64(key) as usize & self.mask;
        loop {
            let slot = self.slots[i];
            if slot == key {
                return true;
            }
            if slot == PAIR_EMPTY {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn insert(&mut self, peer: u32, file: FileRef) {
        let key = Self::key(peer, file);
        debug_assert_ne!(key, PAIR_EMPTY);
        let mut i = mix64(key) as usize & self.mask;
        while self.slots[i] != PAIR_EMPTY {
            debug_assert_ne!(self.slots[i], key, "pair inserted twice");
            i = (i + 1) & self.mask;
        }
        self.slots[i] = key;
    }

    fn remove(&mut self, peer: u32, file: FileRef) {
        let key = Self::key(peer, file);
        let mut i = mix64(key) as usize & self.mask;
        while self.slots[i] != key {
            debug_assert_ne!(self.slots[i], PAIR_EMPTY, "removing an absent pair");
            i = (i + 1) & self.mask;
        }
        // Backward-shift deletion: close the hole by moving back any
        // displaced entry whose home slot precedes the hole.
        let mut hole = i;
        let mut j = (i + 1) & self.mask;
        loop {
            let slot = self.slots[j];
            if slot == PAIR_EMPTY {
                break;
            }
            let home = mix64(slot) as usize & self.mask;
            // `slot` may shift back into the hole only if its home lies
            // outside the (cyclic) range (hole, j].
            let reachable = if hole <= j {
                home <= hole || home > j
            } else {
                home <= hole && home > j
            };
            if reachable {
                self.slots[hole] = slot;
                hole = j;
            }
            j = (j + 1) & self.mask;
        }
        self.slots[hole] = PAIR_EMPTY;
    }
}

/// A cheap, resumable snapshot of an [`ArenaShuffler`]'s progress: the
/// flat replica contents, the swap statistics, and the RNG state.
///
/// Taking one is two flat memcpys (entries + offsets) and a 32-byte RNG
/// clone — no per-peer structures — which is what lets the Fig. 21
/// randomization-decay sweep resume each prefix instead of replaying
/// the whole swap chain from zero.
#[derive(Clone, Debug)]
pub struct ShuffleCheckpoint {
    stats: SwapStats,
    files: Vec<FileRef>,
    offsets: Vec<u32>,
    n_files: usize,
    rng: StdRng,
}

impl ShuffleCheckpoint {
    /// Swap statistics at the checkpoint.
    pub fn stats(&self) -> SwapStats {
        self.stats
    }

    /// Rebuilds a live shuffler (and its RNG) from the checkpoint. The
    /// membership index and replica array are reconstructed in O(N);
    /// continuing the run draws the exact RNG sequence the original
    /// would have drawn, so a resumed run is byte-identical to an
    /// uninterrupted one.
    pub fn resume(&self) -> (ArenaShuffler, StdRng) {
        let mut shuffler =
            ArenaShuffler::from_parts(self.files.clone(), self.offsets.clone(), self.n_files);
        shuffler.stats = self.stats;
        (shuffler, self.rng.clone())
    }
}

/// Arena-backed incremental randomizer: the CSR counterpart of
/// [`Shuffler`].
///
/// Caches live in one flat entry array with a per-peer offset table
/// (rows are unsorted while shuffling, exactly like [`Shuffler`]'s
/// per-cache `Vec`s); membership is a flat open-addressed [`PairSet`]
/// instead of one `HashSet` per peer.
///
/// [`Shuffler`] keeps an explicit replica array of `(peer, slot)` pairs
/// in peer-major order. In CSR layout that array is the identity:
/// replica `i` *is* entry position `i`, with `owner[i]` naming its peer.
/// So a replica draw needs one `owner` load and one `files` load — no
/// `(peer, slot)` tuple, no offset lookup — while remaining the same
/// uniform pick over the same ordering. [`ArenaShuffler::step`] draws
/// the same two `gen_range` calls, so the whole swap chain is
/// byte-identical to the row-path oracle under any seed.
pub struct ArenaShuffler {
    /// Flat cache entries; peer `p`'s row is
    /// `files[offsets[p]..offsets[p + 1]]`, unsorted while shuffling.
    files: Vec<FileRef>,
    /// Row bounds, length `n_peers + 1`.
    offsets: Vec<u32>,
    /// Owning peer of each entry position (the CSR row index, flattened
    /// out so a replica draw is a single load).
    owner: Vec<u32>,
    /// O(1) membership over `(peer, file)` pairs.
    members: PairSet,
    /// Exclusive upper bound of the file-id space.
    n_files: usize,
    stats: SwapStats,
}

impl ArenaShuffler {
    /// Builds an arena shuffler over a packed cache arena.
    ///
    /// # Panics
    ///
    /// Panics if a cache contains a duplicate entry (the arena
    /// constructors already reject that, but adopted CSR parts could
    /// carry one) — replica counts would silently change otherwise.
    pub fn new(arena: &CacheArena) -> Self {
        let (files, offsets) = arena.as_csr_parts();
        Self::from_parts(files.to_vec(), offsets.to_vec(), arena.n_files())
    }

    /// Builds the shuffler from raw CSR parts (rows need not be sorted;
    /// they must be duplicate-free per peer).
    fn from_parts(files: Vec<FileRef>, offsets: Vec<u32>, n_files: usize) -> Self {
        let n_peers = offsets.len() - 1;
        let mut owner = Vec::with_capacity(files.len());
        let mut members = PairSet::with_capacity(files.len());
        for p in 0..n_peers {
            let (lo, hi) = (offsets[p] as usize, offsets[p + 1] as usize);
            for &f in &files[lo..hi] {
                assert!(
                    !members.contains(p as u32, f),
                    "peer {p} cache has duplicates"
                );
                members.insert(p as u32, f);
                owner.push(p as u32);
            }
        }
        ArenaShuffler {
            files,
            offsets,
            owner,
            members,
            n_files,
            stats: SwapStats::default(),
        }
    }

    /// Total number of replicas `N`.
    pub fn replica_count(&self) -> usize {
        self.files.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> SwapStats {
        self.stats
    }

    /// Runs `iterations` swap attempts — the same RNG draw sequence as
    /// [`Shuffler::run`].
    pub fn run(&mut self, iterations: u64, rng: &mut impl Rng) {
        if self.files.len() < 2 {
            // Nothing can ever swap; still record the attempts.
            self.stats.attempted += iterations;
            return;
        }
        for _ in 0..iterations {
            self.step(rng);
        }
    }

    /// Runs one swap attempt; returns whether a swap was performed.
    /// Draw-for-draw and branch-for-branch identical to
    /// [`Shuffler::step`].
    pub fn step(&mut self, rng: &mut impl Rng) -> bool {
        self.stats.attempted += 1;
        if self.files.len() < 2 {
            return false;
        }
        // Uniform position draws are exactly the legacy uniform replica
        // draws: replica `i` in peer-major order is entry position `i`.
        let a = rng.gen_range(0..self.files.len());
        let b = rng.gen_range(0..self.files.len());
        let pu = self.owner[a];
        let pv = self.owner[b];
        if pu == pv {
            return false;
        }
        let f = self.files[a];
        let f2 = self.files[b];
        if self.members.contains(pu, f2) || self.members.contains(pv, f) {
            return false;
        }
        self.files[a] = f2;
        self.files[b] = f;
        self.members.remove(pu, f);
        self.members.insert(pu, f2);
        self.members.remove(pv, f2);
        self.members.insert(pv, f);
        self.stats.performed += 1;
        true
    }

    /// Captures a resumable checkpoint of the current state, pairing the
    /// cache contents with the caller's RNG state.
    pub fn checkpoint(&self, rng: &StdRng) -> ShuffleCheckpoint {
        ShuffleCheckpoint {
            stats: self.stats,
            files: self.files.clone(),
            offsets: self.offsets.clone(),
            n_files: self.n_files,
            rng: rng.clone(),
        }
    }

    /// Packs the current caches into a fresh [`CacheArena`] (rows
    /// sorted), leaving the shuffler free to keep running — the
    /// per-checkpoint snapshot of the randomization sweep.
    pub fn snapshot_arena(&self) -> CacheArena {
        let mut files = self.files.clone();
        for w in self.offsets.windows(2) {
            files[w[0] as usize..w[1] as usize].sort_unstable();
        }
        // Swaps only permute entries between already-validated rows, so
        // the parts stay a valid CSR; skip the revalidation pass.
        CacheArena::from_csr_parts_trusted(files, self.offsets.clone(), self.n_files)
    }

    /// Finishes shuffling, returning the packed arena (rows sorted).
    pub fn into_arena(self) -> CacheArena {
        self.snapshot_arena()
    }
}

/// Fully randomizes a set of caches with the paper's recommended
/// iteration count, returning the shuffled caches and run statistics.
///
/// # Examples
///
/// ```
/// use edonkey_trace::model::FileRef;
/// use edonkey_trace::randomize::randomize_caches;
/// use rand::SeedableRng;
///
/// let caches = vec![
///     vec![FileRef(0), FileRef(1)],
///     vec![FileRef(2)],
///     vec![FileRef(0), FileRef(3)],
/// ];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let (shuffled, stats) = randomize_caches(caches.clone(), &mut rng);
/// // Generosity is preserved...
/// assert_eq!(shuffled[0].len(), 2);
/// assert_eq!(shuffled[1].len(), 1);
/// assert!(stats.attempted > 0);
/// ```
pub fn randomize_caches(
    caches: Vec<Vec<FileRef>>,
    rng: &mut impl Rng,
) -> (Vec<Vec<FileRef>>, SwapStats) {
    let mut shuffler = Shuffler::new(caches);
    let iterations = recommended_iterations(shuffler.replica_count());
    shuffler.run(iterations, rng);
    let stats = shuffler.stats();
    (shuffler.into_caches(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::collections::HashMap;

    fn replica_histogram(caches: &[Vec<FileRef>]) -> HashMap<FileRef, usize> {
        let mut h = HashMap::new();
        for cache in caches {
            for &f in cache {
                *h.entry(f).or_insert(0) += 1;
            }
        }
        h
    }

    fn test_caches() -> Vec<Vec<FileRef>> {
        // 20 peers, caches of varying sizes over 30 files, plus free-riders.
        let mut caches = Vec::new();
        for p in 0..20u32 {
            if p % 5 == 4 {
                caches.push(Vec::new());
                continue;
            }
            let size = 1 + (p % 7) as usize;
            let cache: Vec<FileRef> = (0..size)
                .map(|k| FileRef(((p as usize * 3 + k * 5) % 30) as u32))
                .collect();
            let mut cache = cache;
            cache.sort_unstable();
            cache.dedup();
            caches.push(cache);
        }
        caches
    }

    #[test]
    fn preserves_generosity_and_popularity() {
        let caches = test_caches();
        let sizes: Vec<usize> = caches.iter().map(Vec::len).collect();
        let popularity = replica_histogram(&caches);
        let mut rng = StdRng::seed_from_u64(42);
        let (shuffled, stats) = randomize_caches(caches, &mut rng);
        assert_eq!(shuffled.iter().map(Vec::len).collect::<Vec<_>>(), sizes);
        assert_eq!(replica_histogram(&shuffled), popularity);
        assert!(stats.performed > 0);
        assert!(stats.performed <= stats.attempted);
    }

    #[test]
    fn caches_stay_duplicate_free() {
        let caches = test_caches();
        let mut rng = StdRng::seed_from_u64(1);
        let (shuffled, _) = randomize_caches(caches, &mut rng);
        for cache in &shuffled {
            let set: HashSet<FileRef> = cache.iter().copied().collect();
            assert_eq!(set.len(), cache.len());
            // into_caches sorts.
            assert!(cache.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn actually_destroys_structure() {
        // Two tight communities sharing disjoint file sets; after full
        // randomization, cross-community replicas must appear.
        let mut caches = Vec::new();
        for p in 0..10u32 {
            let base = if p < 5 { 0 } else { 100 };
            caches.push((0..10).map(|k| FileRef(base + ((p + k) % 20))).collect());
        }
        let mut rng = StdRng::seed_from_u64(3);
        let (shuffled, _) = randomize_caches(caches, &mut rng);
        let mixed = shuffled[..5]
            .iter()
            .flatten()
            .filter(|f| f.0 >= 100)
            .count();
        assert!(
            mixed > 5,
            "expected cross-community files after shuffling, got {mixed}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let (a, _) = randomize_caches(test_caches(), &mut rng1);
        let (b, _) = randomize_caches(test_caches(), &mut rng2);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(0);
        let (empty, stats) = randomize_caches(vec![], &mut rng);
        assert!(empty.is_empty());
        assert_eq!(stats.performed, 0);
        // One replica total: nothing can swap.
        let (one, stats) = randomize_caches(vec![vec![FileRef(1)], vec![]], &mut rng);
        assert_eq!(one, vec![vec![FileRef(1)], vec![]]);
        assert_eq!(stats.performed, 0);
    }

    #[test]
    #[should_panic(expected = "duplicates")]
    fn duplicate_cache_entries_rejected() {
        let _ = Shuffler::new(vec![vec![FileRef(1), FileRef(1)]]);
    }

    #[test]
    fn step_reports_swap_outcome() {
        let mut shuffler = Shuffler::new(vec![vec![FileRef(0)], vec![FileRef(1)]]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut swapped = false;
        for _ in 0..50 {
            swapped |= shuffler.step(&mut rng);
        }
        assert!(swapped);
        let caches = shuffler.into_caches();
        let all: Vec<FileRef> = caches.into_iter().flatten().collect();
        let set: HashSet<_> = all.iter().copied().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn recommended_iterations_monotone() {
        let mut prev = 0;
        for n in [0usize, 1, 2, 10, 100, 1000, 10_000] {
            let it = recommended_iterations(n);
            assert!(it >= prev);
            prev = it;
        }
    }

    #[test]
    fn pair_set_insert_contains_remove() {
        let mut set = PairSet::with_capacity(8);
        for p in 0..4u32 {
            for f in 0..2u32 {
                set.insert(p, FileRef(f));
            }
        }
        for p in 0..4u32 {
            assert!(set.contains(p, FileRef(0)));
            assert!(set.contains(p, FileRef(1)));
            assert!(!set.contains(p, FileRef(2)));
        }
        set.remove(2, FileRef(1));
        assert!(!set.contains(2, FileRef(1)));
        assert!(set.contains(2, FileRef(0)));
        // Re-insert after a backward-shift deletion still resolves.
        set.insert(2, FileRef(1));
        assert!(set.contains(2, FileRef(1)));
    }

    #[test]
    fn arena_shuffler_draws_identically_to_row_shuffler() {
        let caches = test_caches();
        let n_files = 30;
        let mut row = Shuffler::new(caches.clone());
        let mut csr = ArenaShuffler::new(&CacheArena::from_caches(&caches, n_files));
        let mut rng_row = StdRng::seed_from_u64(0xDEC0);
        let mut rng_csr = StdRng::seed_from_u64(0xDEC0);
        for _ in 0..500 {
            assert_eq!(csr.step(&mut rng_csr), row.step(&mut rng_row));
        }
        assert_eq!(csr.stats(), row.stats());
        // Both RNGs must sit at the same point in the stream.
        assert_eq!(rng_row.next_u64(), rng_csr.next_u64());
        let row_caches = row.into_caches();
        assert_eq!(csr.into_arena().to_caches(), row_caches);
    }

    #[test]
    fn arena_shuffler_run_matches_randomize_caches() {
        let caches = test_caches();
        let mut rng_row = StdRng::seed_from_u64(7);
        let (row_caches, row_stats) = randomize_caches(caches.clone(), &mut rng_row);
        let mut csr = ArenaShuffler::new(&CacheArena::from_caches(&caches, 30));
        let mut rng_csr = StdRng::seed_from_u64(7);
        csr.run(recommended_iterations(csr.replica_count()), &mut rng_csr);
        assert_eq!(csr.stats(), row_stats);
        assert_eq!(csr.into_arena().to_caches(), row_caches);
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        let caches = test_caches();
        let arena = CacheArena::from_caches(&caches, 30);

        // Uninterrupted: 800 swaps in one go.
        let mut full = ArenaShuffler::new(&arena);
        let mut rng = StdRng::seed_from_u64(99);
        full.run(800, &mut rng);

        // Interrupted: 300 swaps, checkpoint, drop everything, resume 500.
        let mut prefix = ArenaShuffler::new(&arena);
        let mut rng = StdRng::seed_from_u64(99);
        prefix.run(300, &mut rng);
        let ckpt = prefix.checkpoint(&rng);
        drop(prefix);
        drop(rng);
        let (mut resumed, mut rng) = ckpt.resume();
        assert_eq!(resumed.stats().attempted, 300);
        resumed.run(500, &mut rng);

        assert_eq!(resumed.stats(), full.stats());
        assert_eq!(
            resumed.snapshot_arena().to_caches(),
            full.snapshot_arena().to_caches()
        );
    }

    #[test]
    fn arena_shuffler_degenerate_inputs() {
        // Fewer than two replicas: attempts are counted, RNG untouched.
        let arena = CacheArena::from_caches(&[vec![FileRef(0)], vec![]], 1);
        let mut s = ArenaShuffler::new(&arena);
        let mut rng = StdRng::seed_from_u64(3);
        s.run(10, &mut rng);
        let stats = s.stats();
        assert_eq!(stats.attempted, 10);
        assert_eq!(stats.performed, 0);
        let mut fresh = StdRng::seed_from_u64(3);
        assert_eq!(rng.next_u64(), fresh.next_u64());
        assert_eq!(s.into_arena().to_caches(), vec![vec![FileRef(0)], vec![]]);
    }
}
