//! The appendix trace-randomization algorithm.
//!
//! Goal (quoting the paper): *"modify a collection of peer cache contents
//! so that the peer generosity (number of files cached per peer) and the
//! file popularity (number of replicas per file) are maintained, while any
//! other structure — in particular, interest-based clustering between
//! peers — is destroyed."*
//!
//! One iteration:
//! 1. pick a peer `u` with probability `|Cu| / Σ|Cw|`;
//! 2. pick a file `f` uniformly from `Cu`;
//! 3. likewise pick `(v, f')`;
//! 4. swap `f` and `f'` between the two caches — only if `f' ∉ Cu` and
//!    `f ∉ Cv`.
//!
//! Steps 1+2 together are exactly "pick a *replica* uniformly at random",
//! which is how [`Shuffler`] implements them: a flat replica array gives
//! O(1) sampling, and per-peer hash sets give O(1) membership tests, so a
//! full randomization pass is O(N log N) total.
//!
//! The paper proves `½·N·ln N` iterations suffice (`N` = total replicas);
//! [`recommended_iterations`] computes that bound and
//! [`randomize_caches`] applies it.

use std::collections::HashSet;

use rand::Rng;

use crate::model::FileRef;

/// The paper's sufficient iteration count: `½ · N · ln N` for `N` total
/// replicas (at least 1 for tiny non-empty traces).
///
/// # Examples
///
/// ```
/// use edonkey_trace::randomize::recommended_iterations;
/// assert_eq!(recommended_iterations(0), 0);
/// // ½ · 1000 · ln 1000 ≈ 3454.
/// assert_eq!(recommended_iterations(1000), 3454);
/// ```
pub fn recommended_iterations(total_replicas: usize) -> u64 {
    if total_replicas < 2 {
        return if total_replicas == 0 { 0 } else { 1 };
    }
    let n = total_replicas as f64;
    (0.5 * n * n.ln()).ceil() as u64
}

/// Statistics from a randomization run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SwapStats {
    /// Iterations attempted (steps 1–3 executed).
    pub attempted: u64,
    /// Swaps actually performed (membership checks passed).
    pub performed: u64,
}

/// Incremental randomizer over a set of peer caches.
///
/// Owns the caches while shuffling; [`Shuffler::into_caches`] returns them
/// (each sorted) when done. Fig. 21 needs *partial* randomization — hit
/// rate as a function of swap count — which is why this is exposed as a
/// stateful object rather than a single function.
pub struct Shuffler {
    /// Cache contents, indexed by peer. Order within a cache is arbitrary
    /// while shuffling.
    caches: Vec<Vec<FileRef>>,
    /// Membership sets mirroring `caches`.
    members: Vec<HashSet<FileRef>>,
    /// Flat index of every replica as `(peer, slot)`.
    replicas: Vec<(u32, u32)>,
    stats: SwapStats,
}

impl Shuffler {
    /// Builds a shuffler over per-peer caches (entries need not be
    /// sorted; they must be duplicate-free per peer).
    ///
    /// # Panics
    ///
    /// Panics if a cache contains a duplicate entry: replica counts would
    /// silently change otherwise.
    pub fn new(caches: Vec<Vec<FileRef>>) -> Self {
        let mut replicas = Vec::with_capacity(caches.iter().map(Vec::len).sum());
        let mut members = Vec::with_capacity(caches.len());
        for (peer, cache) in caches.iter().enumerate() {
            let set: HashSet<FileRef> = cache.iter().copied().collect();
            assert_eq!(set.len(), cache.len(), "peer {peer} cache has duplicates");
            members.push(set);
            for slot in 0..cache.len() {
                replicas.push((peer as u32, slot as u32));
            }
        }
        Shuffler {
            caches,
            members,
            replicas,
            stats: SwapStats::default(),
        }
    }

    /// Total number of replicas `N`.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> SwapStats {
        self.stats
    }

    /// Runs `iterations` swap attempts.
    pub fn run(&mut self, iterations: u64, rng: &mut impl Rng) {
        if self.replicas.len() < 2 {
            // Nothing can ever swap; still record the attempts.
            self.stats.attempted += iterations;
            return;
        }
        for _ in 0..iterations {
            self.step(rng);
        }
    }

    /// Runs one swap attempt; returns whether a swap was performed.
    pub fn step(&mut self, rng: &mut impl Rng) -> bool {
        self.stats.attempted += 1;
        if self.replicas.len() < 2 {
            return false;
        }
        // Uniform replica picks implement the size-biased peer picks.
        let a = rng.gen_range(0..self.replicas.len());
        let b = rng.gen_range(0..self.replicas.len());
        let (pu, su) = self.replicas[a];
        let (pv, sv) = self.replicas[b];
        if pu == pv {
            // Swapping within one cache is a no-op (and the membership
            // guard below would reject it anyway).
            return false;
        }
        let f = self.caches[pu as usize][su as usize];
        let f2 = self.caches[pv as usize][sv as usize];
        if self.members[pu as usize].contains(&f2) || self.members[pv as usize].contains(&f) {
            return false;
        }
        self.caches[pu as usize][su as usize] = f2;
        self.caches[pv as usize][sv as usize] = f;
        self.members[pu as usize].remove(&f);
        self.members[pu as usize].insert(f2);
        self.members[pv as usize].remove(&f2);
        self.members[pv as usize].insert(f);
        self.stats.performed += 1;
        true
    }

    /// Read-only view of the current caches (unsorted).
    pub fn caches(&self) -> &[Vec<FileRef>] {
        &self.caches
    }

    /// Finishes shuffling, returning the caches sorted per peer.
    pub fn into_caches(mut self) -> Vec<Vec<FileRef>> {
        for cache in &mut self.caches {
            cache.sort_unstable();
        }
        self.caches
    }
}

/// Fully randomizes a set of caches with the paper's recommended
/// iteration count, returning the shuffled caches and run statistics.
///
/// # Examples
///
/// ```
/// use edonkey_trace::model::FileRef;
/// use edonkey_trace::randomize::randomize_caches;
/// use rand::SeedableRng;
///
/// let caches = vec![
///     vec![FileRef(0), FileRef(1)],
///     vec![FileRef(2)],
///     vec![FileRef(0), FileRef(3)],
/// ];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let (shuffled, stats) = randomize_caches(caches.clone(), &mut rng);
/// // Generosity is preserved...
/// assert_eq!(shuffled[0].len(), 2);
/// assert_eq!(shuffled[1].len(), 1);
/// assert!(stats.attempted > 0);
/// ```
pub fn randomize_caches(
    caches: Vec<Vec<FileRef>>,
    rng: &mut impl Rng,
) -> (Vec<Vec<FileRef>>, SwapStats) {
    let mut shuffler = Shuffler::new(caches);
    let iterations = recommended_iterations(shuffler.replica_count());
    shuffler.run(iterations, rng);
    let stats = shuffler.stats();
    (shuffler.into_caches(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn replica_histogram(caches: &[Vec<FileRef>]) -> HashMap<FileRef, usize> {
        let mut h = HashMap::new();
        for cache in caches {
            for &f in cache {
                *h.entry(f).or_insert(0) += 1;
            }
        }
        h
    }

    fn test_caches() -> Vec<Vec<FileRef>> {
        // 20 peers, caches of varying sizes over 30 files, plus free-riders.
        let mut caches = Vec::new();
        for p in 0..20u32 {
            if p % 5 == 4 {
                caches.push(Vec::new());
                continue;
            }
            let size = 1 + (p % 7) as usize;
            let cache: Vec<FileRef> = (0..size)
                .map(|k| FileRef(((p as usize * 3 + k * 5) % 30) as u32))
                .collect();
            let mut cache = cache;
            cache.sort_unstable();
            cache.dedup();
            caches.push(cache);
        }
        caches
    }

    #[test]
    fn preserves_generosity_and_popularity() {
        let caches = test_caches();
        let sizes: Vec<usize> = caches.iter().map(Vec::len).collect();
        let popularity = replica_histogram(&caches);
        let mut rng = StdRng::seed_from_u64(42);
        let (shuffled, stats) = randomize_caches(caches, &mut rng);
        assert_eq!(shuffled.iter().map(Vec::len).collect::<Vec<_>>(), sizes);
        assert_eq!(replica_histogram(&shuffled), popularity);
        assert!(stats.performed > 0);
        assert!(stats.performed <= stats.attempted);
    }

    #[test]
    fn caches_stay_duplicate_free() {
        let caches = test_caches();
        let mut rng = StdRng::seed_from_u64(1);
        let (shuffled, _) = randomize_caches(caches, &mut rng);
        for cache in &shuffled {
            let set: HashSet<FileRef> = cache.iter().copied().collect();
            assert_eq!(set.len(), cache.len());
            // into_caches sorts.
            assert!(cache.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn actually_destroys_structure() {
        // Two tight communities sharing disjoint file sets; after full
        // randomization, cross-community replicas must appear.
        let mut caches = Vec::new();
        for p in 0..10u32 {
            let base = if p < 5 { 0 } else { 100 };
            caches.push((0..10).map(|k| FileRef(base + ((p + k) % 20))).collect());
        }
        let mut rng = StdRng::seed_from_u64(3);
        let (shuffled, _) = randomize_caches(caches, &mut rng);
        let mixed = shuffled[..5]
            .iter()
            .flatten()
            .filter(|f| f.0 >= 100)
            .count();
        assert!(
            mixed > 5,
            "expected cross-community files after shuffling, got {mixed}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let (a, _) = randomize_caches(test_caches(), &mut rng1);
        let (b, _) = randomize_caches(test_caches(), &mut rng2);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(0);
        let (empty, stats) = randomize_caches(vec![], &mut rng);
        assert!(empty.is_empty());
        assert_eq!(stats.performed, 0);
        // One replica total: nothing can swap.
        let (one, stats) = randomize_caches(vec![vec![FileRef(1)], vec![]], &mut rng);
        assert_eq!(one, vec![vec![FileRef(1)], vec![]]);
        assert_eq!(stats.performed, 0);
    }

    #[test]
    #[should_panic(expected = "duplicates")]
    fn duplicate_cache_entries_rejected() {
        let _ = Shuffler::new(vec![vec![FileRef(1), FileRef(1)]]);
    }

    #[test]
    fn step_reports_swap_outcome() {
        let mut shuffler = Shuffler::new(vec![vec![FileRef(0)], vec![FileRef(1)]]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut swapped = false;
        for _ in 0..50 {
            swapped |= shuffler.step(&mut rng);
        }
        assert!(swapped);
        let caches = shuffler.into_caches();
        let all: Vec<FileRef> = caches.into_iter().flatten().collect();
        let set: HashSet<_> = all.iter().copied().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn recommended_iterations_monotone() {
        let mut prev = 0;
        for n in [0usize, 1, 2, 10, 100, 1000, 10_000] {
            let it = recommended_iterations(n);
            assert!(it >= prev);
            prev = it;
        }
    }
}
