//! Columnar cache storage: the whole population's caches in one arena.
//!
//! The analyses and simulations in this workspace all consume "who
//! shares what" as `&[Vec<FileRef>]` — one heap allocation per peer,
//! scattered across the heap, cloned wholesale whenever a day snapshot
//! is viewed peer-indexed. [`CacheArena`] replaces that with a CSR
//! (compressed sparse row) layout: every cache concatenated into one
//! flat sorted `Vec<FileRef>` plus a per-peer offset table. Per-peer
//! views are cheap slices, membership is a binary search over a
//! cache-resident range, and the inverted view (which peers hold file
//! `f`) is a second CSR built once on demand by counting sort.
//!
//! ```
//! use edonkey_trace::compact::CacheArena;
//! use edonkey_trace::model::FileRef;
//!
//! let caches = vec![vec![FileRef(0), FileRef(2)], vec![FileRef(2)]];
//! let arena = CacheArena::from_caches(&caches, 3);
//! assert_eq!(arena.cache(0), &[FileRef(0), FileRef(2)]);
//! assert!(arena.contains(1, FileRef(2)));
//! assert_eq!(arena.holders(FileRef(2)), &[0, 1]);
//! ```

use std::sync::OnceLock;

use crate::model::{DaySnapshot, FileInfo, FileRef, PeerId, PeerInfo, Trace};

/// All peer caches in one flat, sorted, columnar allocation.
///
/// Rows (peers) are contiguous ranges of `files`; `offsets[p]..offsets[p+1]`
/// delimits peer `p`'s cache, which is sorted and deduplicated. The
/// inverted holders index is built lazily, once, behind a [`OnceLock`].
#[derive(Debug)]
pub struct CacheArena {
    /// Concatenated caches; each peer's range is sorted + deduplicated.
    files: Vec<FileRef>,
    /// `offsets[p]..offsets[p + 1]` is peer `p`'s range. Length `n_peers + 1`.
    offsets: Vec<u32>,
    /// Exclusive upper bound of the file-id space.
    n_files: usize,
    /// Inverted index, built on first use.
    holders: OnceLock<HoldersIndex>,
}

/// CSR inverted index: for each file, the sorted peers holding it.
#[derive(Debug)]
struct HoldersIndex {
    /// Concatenated holder lists, each sorted ascending by peer id.
    peers: Vec<u32>,
    /// `offsets[f]..offsets[f + 1]` is file `f`'s holder range.
    offsets: Vec<u32>,
}

impl CacheArena {
    /// Builds an arena from per-peer caches.
    ///
    /// Caches are normalized (sorted, deduplicated) on the way in, so
    /// arbitrary input is accepted; already-normal input (everything the
    /// trace model produces) is copied without re-sorting.
    ///
    /// # Panics
    ///
    /// Panics if any `FileRef` is `>= n_files`, or if the total replica
    /// count overflows the `u32` offset table (4 billion replicas is far
    /// beyond the paper's scale).
    pub fn from_caches(caches: &[Vec<FileRef>], n_files: usize) -> Self {
        Self::build(caches.len(), n_files, |p| &caches[p])
    }

    /// Builds a peer-indexed arena from one day's snapshot: slot `p`
    /// holds peer `p`'s cache that day, empty when the peer was not
    /// observed. This replaces the `Vec<Vec<FileRef>>` scatter-clone the
    /// per-day analyses previously performed.
    pub fn from_snapshot(snapshot: &DaySnapshot, n_peers: usize, n_files: usize) -> Self {
        let mut by_peer: Vec<&[FileRef]> = vec![&[]; n_peers];
        for (peer, cache) in &snapshot.caches {
            by_peer[peer.index()] = cache;
        }
        Self::build(n_peers, n_files, |p| by_peer[p])
    }

    /// Builds the static (union-over-days) arena for a whole trace —
    /// the arena equivalent of [`Trace::static_caches`].
    pub fn from_trace_static(trace: &Trace) -> Self {
        Self::from_caches(&trace.static_caches(), trace.files.len())
    }

    /// Adopts already-CSR data without copying or re-sorting — the
    /// zero-rebuild path for consumers that decode the binary trace
    /// format's day sections (`io::bin`), whose lengths + concatenated
    /// sorted entries are this exact layout.
    ///
    /// Validates the CSR invariants (offset monotonicity and bounds,
    /// per-row sorted/deduplicated entries, refs `< n_files`) instead of
    /// panicking, since the data may come from disk.
    pub fn from_csr_parts(
        files: Vec<FileRef>,
        offsets: Vec<u32>,
        n_files: usize,
    ) -> Result<Self, String> {
        if offsets.first() != Some(&0) {
            return Err("offsets must start with 0".into());
        }
        if *offsets.last().expect("non-empty by the check above") as usize != files.len() {
            return Err(format!(
                "final offset {} does not match {} entries",
                offsets.last().expect("non-empty"),
                files.len()
            ));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets must be non-decreasing".into());
        }
        for w in offsets.windows(2) {
            let row = &files[w[0] as usize..w[1] as usize];
            if row.windows(2).any(|p| p[0] >= p[1]) {
                return Err("row entries must be strictly increasing".into());
            }
            if let Some(last) = row.last() {
                if last.index() >= n_files {
                    return Err(format!(
                        "file ref {last} out of range (n_files = {n_files})"
                    ));
                }
            }
        }
        Ok(CacheArena {
            files,
            offsets,
            n_files,
            holders: OnceLock::new(),
        })
    }

    /// [`CacheArena::from_csr_parts`] for in-crate callers that uphold
    /// the invariants themselves (the shuffler's per-checkpoint
    /// snapshots, which only permute validated rows): full validation
    /// in debug builds only.
    pub(crate) fn from_csr_parts_trusted(
        files: Vec<FileRef>,
        offsets: Vec<u32>,
        n_files: usize,
    ) -> Self {
        #[cfg(debug_assertions)]
        {
            Self::from_csr_parts(files, offsets, n_files).expect("caller-validated CSR parts")
        }
        #[cfg(not(debug_assertions))]
        {
            CacheArena {
                files,
                offsets,
                n_files,
                holders: OnceLock::new(),
            }
        }
    }

    fn build<'a>(
        n_peers: usize,
        n_files: usize,
        cache_of: impl Fn(usize) -> &'a [FileRef],
    ) -> Self {
        let total: usize = (0..n_peers).map(|p| cache_of(p).len()).sum();
        assert!(
            total <= u32::MAX as usize,
            "replica count overflows u32 offsets"
        );
        let mut files = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(n_peers + 1);
        offsets.push(0u32);
        let mut scratch: Vec<FileRef> = Vec::new();
        for p in 0..n_peers {
            let cache = cache_of(p);
            let normal = cache.windows(2).all(|w| w[0] < w[1]);
            let cache: &[FileRef] = if normal {
                cache
            } else {
                scratch.clear();
                scratch.extend_from_slice(cache);
                scratch.sort_unstable();
                scratch.dedup();
                &scratch
            };
            if let Some(last) = cache.last() {
                assert!(
                    last.index() < n_files,
                    "file ref {last} out of range (n_files = {n_files})"
                );
            }
            files.extend_from_slice(cache);
            offsets.push(files.len() as u32);
        }
        CacheArena {
            files,
            offsets,
            n_files,
            holders: OnceLock::new(),
        }
    }

    /// Number of peers (rows).
    pub fn n_peers(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Exclusive upper bound of the file-id space.
    pub fn n_files(&self) -> usize {
        self.n_files
    }

    /// Total replicas (sum of cache sizes).
    pub fn replica_count(&self) -> usize {
        self.files.len()
    }

    /// Peer `p`'s cache: a sorted, deduplicated slice.
    pub fn cache(&self, peer: usize) -> &[FileRef] {
        let lo = self.offsets[peer] as usize;
        let hi = self.offsets[peer + 1] as usize;
        &self.files[lo..hi]
    }

    /// Whether peer `p` shares `file` — binary search within one row.
    pub fn contains(&self, peer: usize, file: FileRef) -> bool {
        self.cache(peer).binary_search(&file).is_ok()
    }

    /// Iterates all caches in peer order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[FileRef]> + '_ {
        (0..self.n_peers()).map(move |p| self.cache(p))
    }

    /// Peers holding `file`, sorted ascending. Builds the inverted
    /// index on first call (counting sort, O(replicas + n_files)); all
    /// later calls are slice lookups.
    pub fn holders(&self, file: FileRef) -> &[u32] {
        let index = self.holders_index();
        let lo = index.offsets[file.index()] as usize;
        let hi = index.offsets[file.index() + 1] as usize;
        &index.peers[lo..hi]
    }

    /// Forces the inverted index to exist. Useful before fanning out
    /// worker threads so the build happens once up front instead of the
    /// first worker building it while the rest block on the lock.
    pub fn ensure_holders(&self) {
        self.holders_index();
    }

    fn holders_index(&self) -> &HoldersIndex {
        self.holders.get_or_init(|| {
            // Counting sort: histogram of per-file replica counts →
            // prefix sums → one placement pass in peer order, which
            // leaves every holder list sorted by construction.
            let mut offsets = vec![0u32; self.n_files + 1];
            for f in &self.files {
                offsets[f.index() + 1] += 1;
            }
            for i in 1..offsets.len() {
                offsets[i] += offsets[i - 1];
            }
            let mut cursor = offsets.clone();
            let mut peers = vec![0u32; self.files.len()];
            for p in 0..self.n_peers() {
                for f in self.cache(p) {
                    let slot = cursor[f.index()];
                    peers[slot as usize] = p as u32;
                    cursor[f.index()] += 1;
                }
            }
            HoldersIndex { peers, offsets }
        })
    }

    /// Converts back to the legacy per-peer `Vec` representation, for
    /// callers not yet ported to arena slices.
    pub fn to_caches(&self) -> Vec<Vec<FileRef>> {
        self.iter().map(<[FileRef]>::to_vec).collect()
    }

    /// The raw CSR parts `(entries, offsets)` — for consumers (like the
    /// arena shuffler) that adopt the layout wholesale instead of going
    /// through per-peer slices.
    pub fn as_csr_parts(&self) -> (&[FileRef], &[u32]) {
        (&self.files, &self.offsets)
    }
}

/// One day's observations in CSR form: the arena equivalent of
/// [`DaySnapshot`].
///
/// `peers[i]` is the i-th observed peer (strictly increasing), and its
/// cache is `entries[offsets[i]..offsets[i + 1]]` (sorted,
/// deduplicated). This is exactly the layout of a binary-format day
/// section (`io::bin`), so streaming consumers can decode into it
/// without one allocation per cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DayArena {
    /// Absolute day number.
    pub day: u32,
    /// Observed peer ids, strictly increasing.
    pub peers: Vec<u32>,
    /// `offsets[i]..offsets[i + 1]` delimits row `i`. Length `peers.len() + 1`.
    pub offsets: Vec<u32>,
    /// Concatenated cache rows, each sorted and deduplicated.
    pub entries: Vec<FileRef>,
}

impl DayArena {
    /// Creates an empty day.
    pub fn new(day: u32) -> Self {
        DayArena {
            day,
            peers: Vec::new(),
            offsets: vec![0],
            entries: Vec::new(),
        }
    }

    /// Converts a row-oriented snapshot (one `Vec` per cache) into CSR.
    pub fn from_snapshot(snapshot: &DaySnapshot) -> Self {
        let total: usize = snapshot.caches.iter().map(|(_, c)| c.len()).sum();
        let mut peers = Vec::with_capacity(snapshot.caches.len());
        let mut offsets = Vec::with_capacity(snapshot.caches.len() + 1);
        let mut entries = Vec::with_capacity(total);
        offsets.push(0u32);
        for (peer, cache) in &snapshot.caches {
            peers.push(peer.0);
            entries.extend_from_slice(cache);
            offsets.push(entries.len() as u32);
        }
        DayArena {
            day: snapshot.day,
            peers,
            offsets,
            entries,
        }
    }

    /// Materializes the row-oriented snapshot (one allocation per cache).
    pub fn to_snapshot(&self) -> DaySnapshot {
        DaySnapshot {
            day: self.day,
            caches: (0..self.peers.len())
                .map(|i| (PeerId(self.peers[i]), self.row(i).to_vec()))
                .collect(),
        }
    }

    /// Number of observed peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Row `i`'s cache slice (row index, not peer id).
    pub fn row(&self, i: usize) -> &[FileRef] {
        &self.entries[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterates `(peer_id, cache)` pairs in peer order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (u32, &[FileRef])> + '_ {
        (0..self.peers.len()).map(move |i| (self.peers[i], self.row(i)))
    }

    /// Validates the CSR invariants, mirroring what
    /// [`Trace::check_invariants`] checks per snapshot.
    pub fn check_invariants(&self, n_peers: usize, n_files: usize) -> Result<(), String> {
        if self.offsets.first() != Some(&0) || self.offsets.len() != self.peers.len() + 1 {
            return Err(format!("day {}: malformed offset table", self.day));
        }
        if *self.offsets.last().expect("non-empty") as usize != self.entries.len() {
            return Err(format!("day {}: final offset mismatch", self.day));
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(format!("day {}: offsets must be non-decreasing", self.day));
        }
        if self.peers.windows(2).any(|w| w[0] >= w[1]) {
            return Err(format!("day {}: peers not strictly increasing", self.day));
        }
        if let Some(&p) = self.peers.last() {
            if p as usize >= n_peers {
                return Err(format!("day {}: peer p{p} out of range", self.day));
            }
        }
        for i in 0..self.peers.len() {
            let row = self.row(i);
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!(
                    "day {}: row of p{} not sorted/deduped",
                    self.day, self.peers[i]
                ));
            }
            if let Some(f) = row.last() {
                if f.index() >= n_files {
                    return Err(format!("day {}: file {f} out of range", self.day));
                }
            }
        }
        Ok(())
    }
}

/// A whole trace in CSR form: intern tables plus one [`DayArena`] per
/// observed day — the arena-native counterpart of [`Trace`] that the
/// derivation pipeline (`pipeline::filter_arena` and friends) transforms
/// without ever materializing per-cache `Vec`s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceArena {
    /// Distinct files, indexed by [`FileRef`].
    pub files: Vec<FileInfo>,
    /// Distinct peers, indexed by [`PeerId`].
    pub peers: Vec<PeerInfo>,
    /// Daily CSR snapshots, sorted by day.
    pub days: Vec<DayArena>,
}

impl TraceArena {
    /// Converts a row-oriented trace.
    pub fn from_trace(trace: &Trace) -> Self {
        TraceArena {
            files: trace.files.clone(),
            peers: trace.peers.clone(),
            days: trace.days.iter().map(DayArena::from_snapshot).collect(),
        }
    }

    /// Materializes the row-oriented trace (for consumers not yet ported
    /// to CSR slices).
    pub fn to_trace(&self) -> Trace {
        let trace = Trace {
            files: self.files.clone(),
            peers: self.peers.clone(),
            days: self.days.iter().map(DayArena::to_snapshot).collect(),
        };
        debug_assert_eq!(trace.check_invariants(), Ok(()));
        trace
    }

    /// Total `(peer, day)` snapshots, like [`Trace::snapshot_count`].
    pub fn snapshot_count(&self) -> usize {
        self.days.iter().map(DayArena::peer_count).sum()
    }

    /// The static (union-over-days) caches as a [`CacheArena`] — the
    /// arena equivalent of [`Trace::static_caches`].
    pub fn static_arena(&self) -> CacheArena {
        let mut per_peer: Vec<Vec<FileRef>> = vec![Vec::new(); self.peers.len()];
        for day in &self.days {
            for (peer, row) in day.iter() {
                per_peer[peer as usize].extend_from_slice(row);
            }
        }
        CacheArena::from_caches(&per_peer, self.files.len())
    }

    /// Validates internal invariants; mirrors [`Trace::check_invariants`].
    pub fn check_invariants(&self) -> Result<(), String> {
        for w in self.days.windows(2) {
            if w[0].day >= w[1].day {
                return Err(format!(
                    "days not strictly sorted: {} {}",
                    w[0].day, w[1].day
                ));
            }
        }
        for day in &self.days {
            day.check_invariants(self.peers.len(), self.files.len())?;
        }
        Ok(())
    }
}

impl Clone for CacheArena {
    fn clone(&self) -> Self {
        // The lazily-built index is cheap to rebuild; don't clone it.
        CacheArena {
            files: self.files.clone(),
            offsets: self.offsets.clone(),
            n_files: self.n_files,
            holders: OnceLock::new(),
        }
    }
}

/// A reusable u64-word membership bitset over a dense id space.
///
/// The simulators repeatedly materialize one *hot row* — a neighbour
/// list, a relay's list — and probe many candidates against it. A
/// `HashSet` probe costs a hash plus a bucket chase per candidate; this
/// is one shift, one mask and one indexed load. The trick that makes it
/// reusable across millions of rows is *touched-word clearing*: only
/// the words dirtied since the last [`RowBits::clear`] are zeroed, so a
/// sparse row (≤ 200 set bits) costs O(row) to stamp and O(row) to
/// clear, never O(universe / 64).
#[derive(Clone, Debug, Default)]
pub struct RowBits {
    words: Vec<u64>,
    /// Indices of words with at least one set bit, each recorded once.
    touched: Vec<u32>,
}

impl RowBits {
    /// Creates an empty bitset; the word table grows on `ensure`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the universe to hold ids `0..n` (never shrinks).
    pub fn ensure(&mut self, n: usize) {
        let words = n.div_ceil(64);
        if self.words.len() < words {
            self.words.resize(words, 0);
        }
    }

    /// Sets bit `id`. The id must be within the last `ensure`d universe.
    #[inline]
    pub fn insert(&mut self, id: u32) {
        let w = (id / 64) as usize;
        if self.words[w] == 0 {
            self.touched.push(w as u32);
        }
        self.words[w] |= 1u64 << (id % 64);
    }

    /// Tests bit `id`.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.words[(id / 64) as usize] & (1u64 << (id % 64)) != 0
    }

    /// Clears every set bit in time proportional to the bits *set*, not
    /// the universe.
    pub fn clear(&mut self) {
        for &w in &self.touched {
            self.words[w as usize] = 0;
        }
        self.touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PeerId;

    fn f(i: u32) -> FileRef {
        FileRef(i)
    }

    #[test]
    fn round_trips_and_slices() {
        let caches = vec![vec![f(0), f(2), f(4)], vec![], vec![f(2)], vec![f(1), f(2)]];
        let arena = CacheArena::from_caches(&caches, 5);
        assert_eq!(arena.n_peers(), 4);
        assert_eq!(arena.n_files(), 5);
        assert_eq!(arena.replica_count(), 6);
        for (p, cache) in caches.iter().enumerate() {
            assert_eq!(arena.cache(p), cache.as_slice());
        }
        assert_eq!(arena.to_caches(), caches);
        assert_eq!(arena.iter().len(), 4);
    }

    #[test]
    fn normalizes_unsorted_input() {
        let caches = vec![vec![f(3), f(1), f(3), f(0)]];
        let arena = CacheArena::from_caches(&caches, 4);
        assert_eq!(arena.cache(0), &[f(0), f(1), f(3)]);
    }

    #[test]
    fn membership() {
        let caches = vec![vec![f(0), f(2)], vec![f(1)]];
        let arena = CacheArena::from_caches(&caches, 3);
        assert!(arena.contains(0, f(0)));
        assert!(!arena.contains(0, f(1)));
        assert!(arena.contains(1, f(1)));
        assert!(!arena.contains(1, f(2)));
    }

    #[test]
    fn holders_index_matches_brute_force() {
        let caches = vec![
            vec![f(0), f(1), f(2)],
            vec![f(1)],
            vec![],
            vec![f(0), f(2)],
            vec![f(2)],
        ];
        let arena = CacheArena::from_caches(&caches, 4);
        for file in 0..4u32 {
            let expected: Vec<u32> = caches
                .iter()
                .enumerate()
                .filter(|(_, c)| c.contains(&f(file)))
                .map(|(p, _)| p as u32)
                .collect();
            assert_eq!(arena.holders(f(file)), expected.as_slice(), "file {file}");
        }
    }

    #[test]
    fn snapshot_arena_is_peer_indexed() {
        let mut snap = DaySnapshot::new(7);
        snap.insert(PeerId(1), vec![f(0), f(1)]);
        snap.insert(PeerId(3), vec![f(1)]);
        let arena = CacheArena::from_snapshot(&snap, 5, 2);
        assert_eq!(arena.n_peers(), 5);
        assert_eq!(arena.cache(0), &[] as &[FileRef]);
        assert_eq!(arena.cache(1), &[f(0), f(1)]);
        assert_eq!(arena.cache(3), &[f(1)]);
        assert_eq!(arena.holders(f(1)), &[1, 3]);
    }

    #[test]
    fn clone_drops_lazy_index() {
        let arena = CacheArena::from_caches(&[vec![f(0)]], 1);
        assert_eq!(arena.holders(f(0)), &[0]);
        let cloned = arena.clone();
        assert_eq!(cloned.holders(f(0)), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_refs() {
        CacheArena::from_caches(&[vec![f(9)]], 3);
    }

    #[test]
    fn day_arena_round_trips_snapshot() {
        let mut snap = DaySnapshot::new(9);
        snap.insert(PeerId(2), vec![f(1), f(3)]);
        snap.insert(PeerId(5), vec![]);
        snap.insert(PeerId(7), vec![f(0)]);
        let day = DayArena::from_snapshot(&snap);
        assert_eq!(day.peer_count(), 3);
        assert_eq!(day.row(0), &[f(1), f(3)]);
        assert_eq!(day.row(1), &[] as &[FileRef]);
        assert_eq!(day.row(2), &[f(0)]);
        assert_eq!(day.check_invariants(8, 4), Ok(()));
        assert_eq!(day.to_snapshot(), snap);
        assert_eq!(
            day.iter().map(|(p, r)| (p, r.len())).collect::<Vec<_>>(),
            vec![(2, 2), (5, 0), (7, 1)]
        );
    }

    #[test]
    fn day_arena_invariants_catch_corruption() {
        let mut snap = DaySnapshot::new(9);
        snap.insert(PeerId(0), vec![f(1)]);
        let good = DayArena::from_snapshot(&snap);
        assert!(good.check_invariants(1, 1).is_err(), "file out of range");
        assert!(good.check_invariants(0, 2).is_err(), "peer out of range");
        let mut bad = good.clone();
        bad.offsets = vec![0, 2];
        assert!(bad.check_invariants(1, 2).is_err());
        let mut bad = good.clone();
        bad.peers = vec![0, 0];
        assert!(bad.check_invariants(1, 2).is_err());
    }

    #[test]
    fn trace_arena_round_trips_and_counts() {
        use crate::model::{CountryCode, FileInfo, PeerInfo};
        use edonkey_proto::md4::Md4;
        use edonkey_proto::query::FileKind;

        let files = (0..3u64)
            .map(|n| FileInfo {
                id: Md4::digest(&n.to_le_bytes()),
                size: 1,
                kind: FileKind::Audio,
            })
            .collect();
        let peers = (0..2u64)
            .map(|n| PeerInfo {
                uid: Md4::digest(format!("p{n}").as_bytes()),
                ip: n as u32,
                country: CountryCode::new("FR"),
                asn: 1,
            })
            .collect();
        let mut a = DaySnapshot::new(1);
        a.insert(PeerId(0), vec![f(0), f(2)]);
        a.insert(PeerId(1), vec![f(1)]);
        let mut b = DaySnapshot::new(3);
        b.insert(PeerId(1), vec![f(2)]);
        let trace = Trace {
            files,
            peers,
            days: vec![a, b],
        };
        assert_eq!(trace.check_invariants(), Ok(()));
        let arena = TraceArena::from_trace(&trace);
        assert_eq!(arena.check_invariants(), Ok(()));
        assert_eq!(arena.snapshot_count(), 3);
        assert_eq!(arena.to_trace(), trace);
        let back = arena.static_arena();
        assert_eq!(back.cache(0), &[f(0), f(2)]);
        assert_eq!(back.cache(1), &[f(1), f(2)]);
    }

    #[test]
    fn csr_parts_round_trip_and_validate() {
        let caches = vec![vec![f(0), f(2)], vec![], vec![f(1)]];
        let built = CacheArena::from_caches(&caches, 3);
        let adopted = CacheArena::from_csr_parts(
            built.iter().flatten().copied().collect(),
            vec![0, 2, 2, 3],
            3,
        )
        .unwrap();
        assert_eq!(adopted.to_caches(), caches);
        assert_eq!(adopted.holders(f(2)), &[0]);

        // Every invariant violation is an Err, never a panic.
        assert!(CacheArena::from_csr_parts(vec![f(0)], vec![1, 1], 2).is_err());
        assert!(CacheArena::from_csr_parts(vec![f(0)], vec![0, 2], 2).is_err());
        assert!(CacheArena::from_csr_parts(vec![f(0), f(1)], vec![0, 2, 1], 2).is_err());
        assert!(CacheArena::from_csr_parts(vec![f(1), f(0)], vec![0, 2], 2).is_err());
        assert!(CacheArena::from_csr_parts(vec![f(5)], vec![0, 1], 2).is_err());
    }

    #[test]
    fn row_bits_insert_probe_and_touched_clear() {
        let mut bits = RowBits::new();
        bits.ensure(300);
        // Word boundaries: 63/64 share nothing, 64/65 share a word.
        for id in [0u32, 63, 64, 65, 130, 299] {
            bits.insert(id);
        }
        for id in [0u32, 63, 64, 65, 130, 299] {
            assert!(bits.contains(id), "{id}");
        }
        for id in [1u32, 62, 66, 129, 131, 298] {
            assert!(!bits.contains(id), "{id}");
        }
        bits.clear();
        for id in 0..300u32 {
            assert!(!bits.contains(id), "{id} survived clear");
        }
        // Reuse after clear, including re-dirtying the same words.
        bits.insert(64);
        assert!(bits.contains(64));
        assert!(!bits.contains(65));
        // Growing never drops existing bits.
        bits.ensure(10_000);
        assert!(bits.contains(64));
        bits.insert(9_999);
        assert!(bits.contains(9_999));
        bits.clear();
        assert!(!bits.contains(9_999));
    }
}
