//! Columnar cache storage: the whole population's caches in one arena.
//!
//! The analyses and simulations in this workspace all consume "who
//! shares what" as `&[Vec<FileRef>]` — one heap allocation per peer,
//! scattered across the heap, cloned wholesale whenever a day snapshot
//! is viewed peer-indexed. [`CacheArena`] replaces that with a CSR
//! (compressed sparse row) layout: every cache concatenated into one
//! flat sorted `Vec<FileRef>` plus a per-peer offset table. Per-peer
//! views are cheap slices, membership is a binary search over a
//! cache-resident range, and the inverted view (which peers hold file
//! `f`) is a second CSR built once on demand by counting sort.
//!
//! ```
//! use edonkey_trace::compact::CacheArena;
//! use edonkey_trace::model::FileRef;
//!
//! let caches = vec![vec![FileRef(0), FileRef(2)], vec![FileRef(2)]];
//! let arena = CacheArena::from_caches(&caches, 3);
//! assert_eq!(arena.cache(0), &[FileRef(0), FileRef(2)]);
//! assert!(arena.contains(1, FileRef(2)));
//! assert_eq!(arena.holders(FileRef(2)), &[0, 1]);
//! ```

use std::sync::OnceLock;

use crate::model::{DaySnapshot, FileRef, Trace};

/// All peer caches in one flat, sorted, columnar allocation.
///
/// Rows (peers) are contiguous ranges of `files`; `offsets[p]..offsets[p+1]`
/// delimits peer `p`'s cache, which is sorted and deduplicated. The
/// inverted holders index is built lazily, once, behind a [`OnceLock`].
#[derive(Debug)]
pub struct CacheArena {
    /// Concatenated caches; each peer's range is sorted + deduplicated.
    files: Vec<FileRef>,
    /// `offsets[p]..offsets[p + 1]` is peer `p`'s range. Length `n_peers + 1`.
    offsets: Vec<u32>,
    /// Exclusive upper bound of the file-id space.
    n_files: usize,
    /// Inverted index, built on first use.
    holders: OnceLock<HoldersIndex>,
}

/// CSR inverted index: for each file, the sorted peers holding it.
#[derive(Debug)]
struct HoldersIndex {
    /// Concatenated holder lists, each sorted ascending by peer id.
    peers: Vec<u32>,
    /// `offsets[f]..offsets[f + 1]` is file `f`'s holder range.
    offsets: Vec<u32>,
}

impl CacheArena {
    /// Builds an arena from per-peer caches.
    ///
    /// Caches are normalized (sorted, deduplicated) on the way in, so
    /// arbitrary input is accepted; already-normal input (everything the
    /// trace model produces) is copied without re-sorting.
    ///
    /// # Panics
    ///
    /// Panics if any `FileRef` is `>= n_files`, or if the total replica
    /// count overflows the `u32` offset table (4 billion replicas is far
    /// beyond the paper's scale).
    pub fn from_caches(caches: &[Vec<FileRef>], n_files: usize) -> Self {
        Self::build(caches.len(), n_files, |p| &caches[p])
    }

    /// Builds a peer-indexed arena from one day's snapshot: slot `p`
    /// holds peer `p`'s cache that day, empty when the peer was not
    /// observed. This replaces the `Vec<Vec<FileRef>>` scatter-clone the
    /// per-day analyses previously performed.
    pub fn from_snapshot(snapshot: &DaySnapshot, n_peers: usize, n_files: usize) -> Self {
        let mut by_peer: Vec<&[FileRef]> = vec![&[]; n_peers];
        for (peer, cache) in &snapshot.caches {
            by_peer[peer.index()] = cache;
        }
        Self::build(n_peers, n_files, |p| by_peer[p])
    }

    /// Builds the static (union-over-days) arena for a whole trace —
    /// the arena equivalent of [`Trace::static_caches`].
    pub fn from_trace_static(trace: &Trace) -> Self {
        Self::from_caches(&trace.static_caches(), trace.files.len())
    }

    /// Adopts already-CSR data without copying or re-sorting — the
    /// zero-rebuild path for consumers that decode the binary trace
    /// format's day sections (`io::bin`), whose lengths + concatenated
    /// sorted entries are this exact layout.
    ///
    /// Validates the CSR invariants (offset monotonicity and bounds,
    /// per-row sorted/deduplicated entries, refs `< n_files`) instead of
    /// panicking, since the data may come from disk.
    pub fn from_csr_parts(
        files: Vec<FileRef>,
        offsets: Vec<u32>,
        n_files: usize,
    ) -> Result<Self, String> {
        if offsets.first() != Some(&0) {
            return Err("offsets must start with 0".into());
        }
        if *offsets.last().expect("non-empty by the check above") as usize != files.len() {
            return Err(format!(
                "final offset {} does not match {} entries",
                offsets.last().expect("non-empty"),
                files.len()
            ));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets must be non-decreasing".into());
        }
        for w in offsets.windows(2) {
            let row = &files[w[0] as usize..w[1] as usize];
            if row.windows(2).any(|p| p[0] >= p[1]) {
                return Err("row entries must be strictly increasing".into());
            }
            if let Some(last) = row.last() {
                if last.index() >= n_files {
                    return Err(format!(
                        "file ref {last} out of range (n_files = {n_files})"
                    ));
                }
            }
        }
        Ok(CacheArena {
            files,
            offsets,
            n_files,
            holders: OnceLock::new(),
        })
    }

    fn build<'a>(
        n_peers: usize,
        n_files: usize,
        cache_of: impl Fn(usize) -> &'a [FileRef],
    ) -> Self {
        let total: usize = (0..n_peers).map(|p| cache_of(p).len()).sum();
        assert!(
            total <= u32::MAX as usize,
            "replica count overflows u32 offsets"
        );
        let mut files = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(n_peers + 1);
        offsets.push(0u32);
        let mut scratch: Vec<FileRef> = Vec::new();
        for p in 0..n_peers {
            let cache = cache_of(p);
            let normal = cache.windows(2).all(|w| w[0] < w[1]);
            let cache: &[FileRef] = if normal {
                cache
            } else {
                scratch.clear();
                scratch.extend_from_slice(cache);
                scratch.sort_unstable();
                scratch.dedup();
                &scratch
            };
            if let Some(last) = cache.last() {
                assert!(
                    last.index() < n_files,
                    "file ref {last} out of range (n_files = {n_files})"
                );
            }
            files.extend_from_slice(cache);
            offsets.push(files.len() as u32);
        }
        CacheArena {
            files,
            offsets,
            n_files,
            holders: OnceLock::new(),
        }
    }

    /// Number of peers (rows).
    pub fn n_peers(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Exclusive upper bound of the file-id space.
    pub fn n_files(&self) -> usize {
        self.n_files
    }

    /// Total replicas (sum of cache sizes).
    pub fn replica_count(&self) -> usize {
        self.files.len()
    }

    /// Peer `p`'s cache: a sorted, deduplicated slice.
    pub fn cache(&self, peer: usize) -> &[FileRef] {
        let lo = self.offsets[peer] as usize;
        let hi = self.offsets[peer + 1] as usize;
        &self.files[lo..hi]
    }

    /// Whether peer `p` shares `file` — binary search within one row.
    pub fn contains(&self, peer: usize, file: FileRef) -> bool {
        self.cache(peer).binary_search(&file).is_ok()
    }

    /// Iterates all caches in peer order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[FileRef]> + '_ {
        (0..self.n_peers()).map(move |p| self.cache(p))
    }

    /// Peers holding `file`, sorted ascending. Builds the inverted
    /// index on first call (counting sort, O(replicas + n_files)); all
    /// later calls are slice lookups.
    pub fn holders(&self, file: FileRef) -> &[u32] {
        let index = self.holders_index();
        let lo = index.offsets[file.index()] as usize;
        let hi = index.offsets[file.index() + 1] as usize;
        &index.peers[lo..hi]
    }

    /// Forces the inverted index to exist. Useful before fanning out
    /// worker threads so the build happens once up front instead of the
    /// first worker building it while the rest block on the lock.
    pub fn ensure_holders(&self) {
        self.holders_index();
    }

    fn holders_index(&self) -> &HoldersIndex {
        self.holders.get_or_init(|| {
            // Counting sort: histogram of per-file replica counts →
            // prefix sums → one placement pass in peer order, which
            // leaves every holder list sorted by construction.
            let mut offsets = vec![0u32; self.n_files + 1];
            for f in &self.files {
                offsets[f.index() + 1] += 1;
            }
            for i in 1..offsets.len() {
                offsets[i] += offsets[i - 1];
            }
            let mut cursor = offsets.clone();
            let mut peers = vec![0u32; self.files.len()];
            for p in 0..self.n_peers() {
                for f in self.cache(p) {
                    let slot = cursor[f.index()];
                    peers[slot as usize] = p as u32;
                    cursor[f.index()] += 1;
                }
            }
            HoldersIndex { peers, offsets }
        })
    }

    /// Converts back to the legacy per-peer `Vec` representation, for
    /// callers not yet ported to arena slices.
    pub fn to_caches(&self) -> Vec<Vec<FileRef>> {
        self.iter().map(<[FileRef]>::to_vec).collect()
    }
}

impl Clone for CacheArena {
    fn clone(&self) -> Self {
        // The lazily-built index is cheap to rebuild; don't clone it.
        CacheArena {
            files: self.files.clone(),
            offsets: self.offsets.clone(),
            n_files: self.n_files,
            holders: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PeerId;

    fn f(i: u32) -> FileRef {
        FileRef(i)
    }

    #[test]
    fn round_trips_and_slices() {
        let caches = vec![vec![f(0), f(2), f(4)], vec![], vec![f(2)], vec![f(1), f(2)]];
        let arena = CacheArena::from_caches(&caches, 5);
        assert_eq!(arena.n_peers(), 4);
        assert_eq!(arena.n_files(), 5);
        assert_eq!(arena.replica_count(), 6);
        for (p, cache) in caches.iter().enumerate() {
            assert_eq!(arena.cache(p), cache.as_slice());
        }
        assert_eq!(arena.to_caches(), caches);
        assert_eq!(arena.iter().len(), 4);
    }

    #[test]
    fn normalizes_unsorted_input() {
        let caches = vec![vec![f(3), f(1), f(3), f(0)]];
        let arena = CacheArena::from_caches(&caches, 4);
        assert_eq!(arena.cache(0), &[f(0), f(1), f(3)]);
    }

    #[test]
    fn membership() {
        let caches = vec![vec![f(0), f(2)], vec![f(1)]];
        let arena = CacheArena::from_caches(&caches, 3);
        assert!(arena.contains(0, f(0)));
        assert!(!arena.contains(0, f(1)));
        assert!(arena.contains(1, f(1)));
        assert!(!arena.contains(1, f(2)));
    }

    #[test]
    fn holders_index_matches_brute_force() {
        let caches = vec![
            vec![f(0), f(1), f(2)],
            vec![f(1)],
            vec![],
            vec![f(0), f(2)],
            vec![f(2)],
        ];
        let arena = CacheArena::from_caches(&caches, 4);
        for file in 0..4u32 {
            let expected: Vec<u32> = caches
                .iter()
                .enumerate()
                .filter(|(_, c)| c.contains(&f(file)))
                .map(|(p, _)| p as u32)
                .collect();
            assert_eq!(arena.holders(f(file)), expected.as_slice(), "file {file}");
        }
    }

    #[test]
    fn snapshot_arena_is_peer_indexed() {
        let mut snap = DaySnapshot::new(7);
        snap.insert(PeerId(1), vec![f(0), f(1)]);
        snap.insert(PeerId(3), vec![f(1)]);
        let arena = CacheArena::from_snapshot(&snap, 5, 2);
        assert_eq!(arena.n_peers(), 5);
        assert_eq!(arena.cache(0), &[] as &[FileRef]);
        assert_eq!(arena.cache(1), &[f(0), f(1)]);
        assert_eq!(arena.cache(3), &[f(1)]);
        assert_eq!(arena.holders(f(1)), &[1, 3]);
    }

    #[test]
    fn clone_drops_lazy_index() {
        let arena = CacheArena::from_caches(&[vec![f(0)]], 1);
        assert_eq!(arena.holders(f(0)), &[0]);
        let cloned = arena.clone();
        assert_eq!(cloned.holders(f(0)), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_refs() {
        CacheArena::from_caches(&[vec![f(9)]], 3);
    }

    #[test]
    fn csr_parts_round_trip_and_validate() {
        let caches = vec![vec![f(0), f(2)], vec![], vec![f(1)]];
        let built = CacheArena::from_caches(&caches, 3);
        let adopted = CacheArena::from_csr_parts(
            built.iter().flatten().copied().collect(),
            vec![0, 2, 2, 3],
            3,
        )
        .unwrap();
        assert_eq!(adopted.to_caches(), caches);
        assert_eq!(adopted.holders(f(2)), &[0]);

        // Every invariant violation is an Err, never a panic.
        assert!(CacheArena::from_csr_parts(vec![f(0)], vec![1, 1], 2).is_err());
        assert!(CacheArena::from_csr_parts(vec![f(0)], vec![0, 2], 2).is_err());
        assert!(CacheArena::from_csr_parts(vec![f(0), f(1)], vec![0, 2, 1], 2).is_err());
        assert!(CacheArena::from_csr_parts(vec![f(1), f(0)], vec![0, 2], 2).is_err());
        assert!(CacheArena::from_csr_parts(vec![f(5)], vec![0, 1], 2).is_err());
    }
}
