//! Regeneration of Section 2–3 artefacts: Figs. 1–10, Tables 1–2.

use edonkey_analysis::{contribution, daily, geography, popularity, sizes, spread, summary};

use crate::{f, Emitter, Workload};

/// Fig. 1: clients and files scanned per day (crawler coverage).
pub fn fig01(w: &Workload) {
    let mut e = Emitter::new("fig01");
    e.comment("Fig. 1: evolution of clients and shared files per day");
    e.comment("day\tclients\tdistinct_files");
    for row in daily::clients_and_files_per_day(&w.full) {
        e.row([
            row.day.to_string(),
            row.clients.to_string(),
            row.files.to_string(),
        ]);
    }
    e.finish();
}

/// Fig. 2: new and cumulative files discovered per day.
pub fn fig02(w: &Workload) {
    let mut e = Emitter::new("fig02");
    e.comment("Fig. 2: files discovered during the trace (full trace)");
    e.comment("day\tnew_files\ttotal_files");
    for row in daily::file_discovery_per_day(&w.full) {
        e.row([
            row.day.to_string(),
            row.new_files.to_string(),
            row.total_files.to_string(),
        ]);
    }
    let rate = daily::new_files_per_client(&w.full);
    e.comment(&format!(
        "mean new files per client per day: {rate:.2} (paper: ~5)"
    ));
    e.finish();
}

/// Fig. 3: per-day files and non-empty caches after extrapolation.
pub fn fig03(w: &Workload) {
    let mut e = Emitter::new("fig03");
    e.comment("Fig. 3: files and non-empty caches per day (extrapolated trace)");
    e.comment("day\tfile_replicas\tnon_empty_caches");
    for row in daily::coverage_per_day(&w.extrapolated) {
        e.row([
            row.day.to_string(),
            row.files.to_string(),
            row.non_empty_caches.to_string(),
        ]);
    }
    e.finish();
}

/// Fig. 4: distribution of clients per country.
pub fn fig04(w: &Workload) {
    let mut e = Emitter::new("fig04");
    e.comment("Fig. 4: distribution of clients per country (full trace)");
    e.comment("country\tclients\tshare_percent");
    for (cc, n, share) in geography::clients_per_country(&w.full) {
        e.row([cc.to_string(), n.to_string(), f(100.0 * share, 1)]);
    }
    e.finish();
}

/// Table 1: general characteristics of each trace stage.
pub fn table1(w: &Workload) {
    let mut e = Emitter::new("table1");
    e.comment("Table 1: general characteristics of the trace");
    e.comment("stage\tduration_days\tclients\tfree_riders\tfree_rider_pct\tsnapshots\tdistinct_files\tterabytes");
    for (stage, trace) in [
        ("full", &w.full),
        ("filtered", &w.filtered),
        ("extrapolated", &w.extrapolated),
    ] {
        let s = summary::summarize(trace);
        e.row([
            stage.to_string(),
            s.duration_days.to_string(),
            s.clients.to_string(),
            s.free_riders.to_string(),
            f(100.0 * s.free_rider_fraction(), 1),
            s.snapshots.to_string(),
            s.distinct_files.to_string(),
            f(s.distinct_bytes as f64 / 1e12, 3),
        ]);
    }
    e.finish();
}

/// Fig. 5: file replication vs rank for five sample days.
pub fn fig05(w: &Workload) {
    let mut e = Emitter::new("fig05");
    e.comment("Fig. 5: distribution of file replication for 5 days (extrapolated)");
    e.comment("day\trank\tsources");
    let days = popularity::sample_days(&w.extrapolated, 5);
    for (day, curve) in popularity::replication_curves(&w.extrapolated, &days, 6) {
        for (rank, sources) in curve {
            e.row([day.to_string(), rank.to_string(), sources.to_string()]);
        }
        e.blank();
    }
    e.finish();
}

/// Fig. 6: cumulative distribution of file sizes by popularity level.
pub fn fig06(w: &Workload) {
    let mut e = Emitter::new("fig06");
    e.comment("Fig. 6: CDF of file sizes (KB) for popularity >= 1, 5, 10 (filtered)");
    e.comment("min_popularity\tsize_kb\tcdf");
    for (threshold, cdf) in sizes::size_cdfs_by_popularity(&w.filtered, &[1, 5, 10]) {
        for (x, y) in cdf.log_series(6) {
            e.row([threshold.to_string(), f(x, 2), f(y, 4)]);
        }
        e.blank();
    }
    let (small, mid, large) = sizes::size_mix(&w.filtered);
    e.comment(&format!(
        "size mix: {:.0}% < 1MB, {:.0}% 1-10MB, {:.0}% >= 10MB (paper: 40/50/10)",
        100.0 * small,
        100.0 * mid,
        100.0 * large
    ));
    e.comment(&format!(
        "among popularity>=5 files, {:.0}% are > 600MB (paper: ~45%)",
        100.0 * sizes::fraction_larger_than(&w.filtered, 5, 600 << 20)
    ));
    e.finish();
}

/// Fig. 7: files and bytes shared per client.
pub fn fig07(w: &Workload) {
    let mut e = Emitter::new("fig07");
    e.comment("Fig. 7: files and disk space shared per client (filtered)");
    let cdfs = contribution::contribution_cdfs(&w.filtered);
    e.comment("series\tx\tcdf (x = files, or GB for space series)");
    for (name, cdf) in [
        ("files_all", &cdfs.files_all),
        ("files_sharers", &cdfs.files_sharers),
        ("space_all", &cdfs.space_all),
        ("space_sharers", &cdfs.space_sharers),
    ] {
        for (x, y) in cdf.log_series(5) {
            e.row([name.to_string(), f(x, 4), f(y, 4)]);
        }
        e.blank();
    }
    e.comment(&format!(
        "top 15% of sharers hold {:.0}% of files (paper: 75%)",
        100.0 * contribution::generosity_concentration(&w.filtered, 0.15)
    ));
    e.finish();
}

/// Fig. 8: spread over time for the six most popular files.
pub fn fig08(w: &Workload) {
    let mut e = Emitter::new("fig08");
    e.comment("Fig. 8: file spread (% of clients sharing) for the top-6 files");
    e.comment("file_rank\tday\tspread_percent");
    let top = spread::top_files_overall(&w.filtered, 6);
    for (idx, (file, series)) in spread::spread_over_time(&w.filtered, &top)
        .into_iter()
        .enumerate()
    {
        e.comment(&format!("file #{} = {}", idx + 1, file));
        for (day, pct) in series {
            e.row([(idx + 1).to_string(), day.to_string(), f(pct, 4)]);
        }
        e.blank();
    }
    if let Some((file, day, holders)) = spread::peak_spread(&w.filtered) {
        e.comment(&format!(
            "peak: file {file} held by {holders} clients on day {day} ({:.2}% of {}; paper: 372 of 53476 = 0.7%)",
            100.0 * holders as f64 / w.filtered.peers.len().max(1) as f64,
            w.filtered.peers.len()
        ));
    }
    e.finish();
}

fn rank_figure(name: &str, caption_day: &str, w: &Workload, day: u32) {
    let mut e = Emitter::new(name);
    e.comment(&format!(
        "{}: rank evolution of the top-5 files of {caption_day} (filtered)",
        name
    ));
    e.comment("file_rank\tday\trank (empty = absent that day)");
    let top = spread::top_files_on_day(&w.filtered, day, 5);
    for (idx, (_, series)) in spread::rank_over_time(&w.filtered, &top)
        .into_iter()
        .enumerate()
    {
        for (d, rank) in series {
            e.row([
                (idx + 1).to_string(),
                d.to_string(),
                rank.map(|r| r.to_string()).unwrap_or_default(),
            ]);
        }
        e.blank();
    }
    e.finish();
}

/// Fig. 9: rank evolution of the first analysis day's top-5 files.
pub fn fig09(w: &Workload) {
    let day = w.filtered.first_day().unwrap_or(0);
    rank_figure("fig09", "the first day", w, day);
}

/// Fig. 10: rank evolution of the mid-trace top-5 files.
pub fn fig10(w: &Workload) {
    let day = match (w.filtered.first_day(), w.filtered.last_day()) {
        (Some(a), Some(b)) => a + (b - a) / 2,
        _ => 0,
    };
    rank_figure("fig10", "mid-trace", w, day);
}

/// Table 2: the top five autonomous systems.
pub fn table2(w: &Workload) {
    let mut e = Emitter::new("table2");
    e.comment("Table 2: top-5 autonomous systems by hosted clients (full)");
    e.comment("asn\tcountry\tglobal_pct\tnational_pct\tclients");
    for row in geography::top_autonomous_systems(&w.full, 5) {
        e.row([
            row.asn.to_string(),
            row.country.to_string(),
            f(100.0 * row.global_share, 1),
            f(100.0 * row.national_share, 1),
            row.clients.to_string(),
        ]);
    }
    e.comment(&format!(
        "combined top-5 share: {:.0}% (paper: 54%)",
        100.0 * geography::top_as_combined_share(&w.full, 5)
    ));
    e.finish();
}
