//! Beyond-the-paper experiment: proactive (gossip) vs reactive (LRU)
//! semantic neighbours on the same workload.
//! Usage: `cargo run --release -p edonkey-bench --bin gossip [--scale …]`
use edonkey_bench::{f, Emitter, Scale, Workload, SEED};
use edonkey_semsearch::gossip::{build_overlay, overlay_hit_rate, GossipConfig};
use edonkey_semsearch::sim::{simulate, SimConfig};

fn main() {
    let w = Workload::generate(Scale::from_env());
    let caches = w.filtered.static_caches();
    let n_files = w.filtered.files.len();
    let mut e = Emitter::new("gossip");
    e.comment("Gossip-built vs download-learned semantic neighbours");
    e.comment("mechanism\tview_size\thit_rate_pct");
    for &size in &[5usize, 10, 20] {
        let lru = simulate(&caches, n_files, &SimConfig::lru(size).with_seed(SEED));
        e.row([
            "lru".to_string(),
            size.to_string(),
            f(100.0 * lru.hit_rate(), 2),
        ]);
        for cycles in [0u32, 10, 25] {
            let overlay = build_overlay(
                &caches,
                &GossipConfig {
                    semantic_view: size,
                    cycles,
                    ..GossipConfig::default()
                },
            );
            let rate = overlay_hit_rate(&caches, n_files, &overlay, SEED);
            e.row([
                format!("gossip_{cycles}cycles"),
                size.to_string(),
                f(100.0 * rate, 2),
            ]);
        }
        e.blank();
    }
    e.finish();
}
