//! Beyond-the-paper experiment: the live semantic overlay the authors
//! announced as future work — per-day hit rates while caches churn.
//! Usage: `cargo run --release -p edonkey-bench --bin overlay [--scale …]`
use edonkey_bench::{f, Emitter, Scale, SEED};
use edonkey_semsearch::overlay::{simulate_overlay, steady_state_hit_rate, OverlayConfig};
use edonkey_workload::dynamics::Dynamics;
use edonkey_workload::Population;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let config = scale.config(SEED);
    eprintln!("[overlay] generating ground truth…");
    let population = Population::generate(config);
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x11fe);
    let truth = Dynamics::new(&population, &mut rng).run(&mut rng);

    let mut e = Emitter::new("overlay");
    e.comment("Live semantic overlay: per-day hit rate under real cache churn");
    e.comment("list_size\tday\trequests\thit_rate_pct");
    for &size in &[5usize, 20] {
        let stats = simulate_overlay(
            &truth.days,
            truth.start_day,
            population.files.len(),
            &OverlayConfig {
                list_size: size,
                ..OverlayConfig::lru(size)
            },
        );
        for s in &stats {
            e.row([
                size.to_string(),
                s.day.to_string(),
                s.requests.to_string(),
                f(100.0 * s.hit_rate(), 2),
            ]);
        }
        e.comment(&format!(
            "steady state (after 7-day warm-up), size {size}: {:.1}%",
            100.0 * steady_state_hit_rate(&stats, 7)
        ));
        e.blank();
    }
    e.finish();
}
