//! Regenerates the `fault_sweep` ablation: crawl coverage and the
//! Fig. 18 policy ordering vs the injected transient-fault rate, for
//! the no-retry and retry+backoff crawler policies.
//!
//! Usage: `cargo run --release -p edonkey-bench --bin fault_sweep [--scale test|small|repro|paper]`
fn main() {
    let scale = edonkey_bench::Scale::from_env();
    edonkey_bench::ablations::ablation_fault_sweep(scale);
}
