//! Regenerates every table and figure of the paper in one run, sharing
//! one generated workload, then runs the ablations. Output lands in
//! `EXPERIMENTS-data/*.tsv`.
//!
//! Usage: `cargo run --release -p edonkey-bench --bin reproduce [--scale test|small|repro|paper] [--trace <path>]`
//!
//! With `--trace <path>` (or `EDONKEY_TRACE`), the full trace is loaded
//! from the file — binary columnar, JSON, or compact, sniffed from the
//! contents — instead of being generated, and the filtered/extrapolated
//! stages are derived from it.
use edonkey_bench::{
    ablations, figures_cluster as fc, figures_measure as fm, figures_search as fs,
};

type FigureFn = fn(&edonkey_bench::Workload);

fn main() {
    let scale = edonkey_bench::Scale::from_env();
    let w = edonkey_bench::Workload::generate(scale);
    let figures: &[(&str, FigureFn)] = &[
        ("fig01", fm::fig01),
        ("fig02", fm::fig02),
        ("fig03", fm::fig03),
        ("fig04", fm::fig04),
        ("table1", fm::table1),
        ("fig05", fm::fig05),
        ("fig06", fm::fig06),
        ("fig07", fm::fig07),
        ("fig08", fm::fig08),
        ("fig09", fm::fig09),
        ("fig10", fm::fig10),
        ("table2", fm::table2),
        ("fig11", fc::fig11),
        ("fig12", fc::fig12),
        ("fig13", fc::fig13),
        ("fig14", fc::fig14),
        ("fig15", fc::fig15),
        ("fig16", fc::fig16),
        ("fig17", fc::fig17),
        ("fig18", fs::fig18),
        ("fig19", fs::fig19),
        ("fig20", fs::fig20),
        ("table3", fs::table3),
        ("fig21", fs::fig21),
        ("fig22", fs::fig22),
        ("fig23", fs::fig23),
    ];
    for (name, run) in figures {
        eprintln!("[reproduce] {name}…");
        run(&w);
    }
    eprintln!("[reproduce] ablations…");
    ablations::ablation_interest(scale);
    ablations::ablation_randomize(scale);
    ablations::ablation_policies(scale);
    ablations::ablation_crawler(scale);
    ablations::ablation_fault_sweep(scale);
    ablations::ablation_churn_sweep(scale);
    ablations::ablation_index_backends(scale);
    ablations::ablation_service_mode(scale);
    ablations::ablation_adversary(scale);
    eprintln!("[reproduce] done.");
}
