//! Benchmark-trajectory harness: times the workspace's canonical hot
//! paths at a fixed seed and writes `BENCH_report.json`, so successive
//! commits leave a comparable performance record.
//!
//! Benches (all deterministic, `SEED`-pinned):
//!
//! * `overlap_seq` / `overlap_par` — pairwise overlap counts over the
//!   filtered static caches, sequential seed path vs the parallel arena
//!   engine (the report records both and their speedup; the correlation
//!   curves are checked equal before anything is written);
//! * `arena_build` — packing the caches into a [`CacheArena`];
//! * `sim_sweep_lru` / `sim_sweep_history` — list-size sweeps over the
//!   paper's canonical sizes on the split-cell work-stealing scheduler,
//!   diffed against the sequential whole-cell oracle (`cells_equal`;
//!   `speedup_floor 4x` and a ≥ 10× allocation reduction asserted at
//!   repro scale), plus a metered pass recording the per-stage
//!   breakdown (`stage_intersect_ms` / `stage_update_ms` /
//!   `stage_merge_ms`);
//! * `randomize_arena` — the Fig. 21 shuffle-and-simulate loop on the
//!   arena shuffler, run as prefix + checkpoint-resumed suffix and
//!   diffed against the row-shuffler oracle (`checkpoint_equal`;
//!   ≥ 1.5× asserted at repro scale; the row baseline is recorded in
//!   the entry's config);
//! * `service_mode` — the always-on query-serving mode replaying the
//!   trace as a timed stream through the sharded neighbour store, once
//!   per index backend (`service_equal` asserted bit-identical to the
//!   batch simulator before the report writes; ≥ 10M queries/s
//!   asserted at repro scale; simulated p50/p99/p999 latency per
//!   backend recorded as `latency_*_md` fields and in the config);
//! * `pipeline_par` — filter + extrapolate over the full trace on the
//!   CSR arena path, diffed against the row pipeline (`derived_equal`;
//!   ≥ 3× asserted at repro scale; row baseline in the config);
//! * `trace_io_json_write` / `trace_io_json_read` and
//!   `trace_io_bin_write` / `trace_io_bin_read` — the full trace saved
//!   and reloaded through the JSON and binary columnar codecs (the
//!   binary read entry records its speedup over JSON, and at repro
//!   scale the harness asserts it stays ≥ 5×);
//! * `paper_scale` — the out-of-core tier: streaming generation to
//!   disk, the streaming filter, union caches folded a day at a time,
//!   the banded MinHash overlap histogram and the windowed
//!   bounded-working-set sweep, with the RSS high-water mark asserted
//!   under a per-scale ceiling. At the in-memory scales it also proves
//!   `prefilter_off` bit-identical to the exact engine and the pruned
//!   curve within tolerance; `--scale paper` runs *only* this tier.
//!
//! Every entry also records `alloc_count` / `alloc_bytes` (heap traffic
//! during the timed region, from the bench crate's counting allocator)
//! and `peak_rss_kb` (the `VmHWM` high-water mark at the region's end).
//!
//! Defaults to `--scale repro` (≈20 k peers); `--scale test|small`
//! gives a quick smoke run. Output path: `BENCH_report.json` in the
//! working directory, or `$EDONKEY_BENCH_REPORT`.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use edonkey_analysis::banded::{self, BandedOverlapConfig};
use edonkey_analysis::semantic;
use edonkey_bench::{alloc, Scale, Workload, SEED};
use edonkey_semsearch::experiment::{self, PAPER_LIST_SIZES};
use edonkey_semsearch::neighbours::PolicyKind;
use edonkey_semsearch::serve::{serve_arena_threads, ServeConfig};
use edonkey_semsearch::sim::{simulate_arena_health_with_scratch, SimScratch};
use edonkey_semsearch::SimConfig;
use edonkey_trace::compact::{CacheArena, TraceArena};
use edonkey_trace::io;
use edonkey_trace::model::FileRef;
use edonkey_trace::pipeline::{
    extrapolate, extrapolate_arena, filter, filter_arena, filter_streaming, ExtrapolateConfig,
};
use edonkey_trace::randomize::recommended_iterations;
use edonkey_trace::TraceReader;
use edonkey_workload::generate_trace_streaming;

/// Holder cap for the overlap benches (matches the Fig. 13 binaries:
/// blockbusters contribute quadratic work and no clustering signal).
const HOLDER_CAP: usize = 200;

/// One timed region: wall clock plus heap traffic (from the bench
/// crate's counting allocator) and the process RSS high-water mark as
/// of the region's end.
#[derive(Clone, Copy)]
struct Meas {
    ms: f64,
    alloc_count: u64,
    alloc_bytes: u64,
    peak_rss_kb: u64,
}

struct Entry {
    name: &'static str,
    meas: Meas,
    /// Work units per second (units named in `config`).
    throughput: f64,
    config: String,
    /// Per-stage breakdown from a separately metered pass (sweep
    /// entries only).
    stages: Option<experiment::SweepStages>,
    /// Simulated query-latency percentiles `(p50, p99, p999)` in
    /// milli-days (service-mode entry only).
    latency_md: Option<(u64, u64, u64)>,
}

fn timed<R>(f: impl FnOnce() -> R) -> (R, Meas) {
    let before = alloc::snapshot();
    let start = Instant::now();
    let r = f();
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let a = alloc::since(before);
    (
        r,
        Meas {
            ms,
            alloc_count: a.count,
            alloc_bytes: a.bytes,
            peak_rss_kb: alloc::peak_rss_kb().unwrap_or(0),
        },
    )
}

fn main() {
    // This binary defaults to repro scale (the trajectory baseline);
    // the shared selector defaults to small, so only honor it when the
    // user actually picked a scale.
    let explicit =
        std::env::args().any(|a| a == "--scale") || std::env::var("EDONKEY_SCALE").is_ok();
    let scale = if explicit {
        Scale::from_env()
    } else {
        Scale::Repro
    };
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    // Paper scale runs ONLY the out-of-core tier: the in-memory battery
    // would materialize the full trace (and the O(pairs) sequential
    // overlap oracle) and blow straight through the RSS ceiling this
    // tier exists to enforce.
    if scale == Scale::Paper {
        let mut entries: Vec<Entry> = Vec::new();
        let (n_peers, n_files) = out_of_core_tier(scale, threads, &mut entries);
        let path = std::env::var("EDONKEY_BENCH_REPORT")
            .unwrap_or_else(|_| "BENCH_report.json".to_string());
        std::fs::write(&path, render_json(&entries, scale, n_peers, n_files))
            .expect("write bench report");
        eprintln!("[bench_report] wrote {path}");
        return;
    }

    let w = Workload::generate(scale);
    let caches = w.filtered.static_caches();
    let n_files = w.filtered.files.len();
    let n_peers = caches.len();
    let replicas: usize = caches.iter().map(Vec::len).sum();
    eprintln!("[bench_report] {n_peers} peers, {n_files} files, {replicas} replicas");

    let mut entries: Vec<Entry> = Vec::new();

    // Arena build.
    let (arena, m_build) = timed(|| CacheArena::from_caches(&caches, n_files));
    entries.push(Entry {
        name: "arena_build",
        meas: m_build,
        throughput: replicas as f64 / (m_build.ms / 1e3),
        config: format!("replicas/s over {replicas} replicas"),
        stages: None,
        latency_md: None,
    });

    // Overlap: sequential seed path vs parallel arena engine.
    let (seq, m_seq) =
        timed(|| semantic::overlap_counts(&caches, n_files, |_| true, Some(HOLDER_CAP)));
    let (par, m_par) = timed(|| semantic::overlap_counts_arena(&arena, |_| true, Some(HOLDER_CAP)));
    let seq_curve = semantic::correlation_curve(&seq);
    let par_curve = semantic::correlation_curve(&par);
    assert_eq!(
        seq_curve, par_curve,
        "parallel overlap must reproduce the sequential correlation curve exactly"
    );
    eprintln!(
        "[bench_report] overlap: seq {:.1} ms, par {:.1} ms \
         ({:.2}x, {} pairs, curves identical, {} seq allocs)",
        m_seq.ms,
        m_par.ms,
        m_seq.ms / m_par.ms,
        seq.pair_count(),
        m_seq.alloc_count
    );
    // The seed oracle allocated one Vec per shared file plus a per-pair
    // hash map: 254,722 allocations per run at repro scale. The
    // scratch-backed CSR rewrite must hold a >= 10x reduction.
    const OVERLAP_SEQ_SEED_ALLOCS: u64 = 254_722;
    if scale == Scale::Repro {
        assert!(
            m_seq.alloc_count * 10 <= OVERLAP_SEQ_SEED_ALLOCS,
            "overlap_seq: scratch-backed oracle must allocate >= 10x less than the \
             {OVERLAP_SEQ_SEED_ALLOCS}-alloc seed oracle (got {})",
            m_seq.alloc_count
        );
    }
    entries.push(Entry {
        name: "overlap_seq",
        meas: m_seq,
        throughput: seq.pair_count() as f64 / (m_seq.ms / 1e3),
        config: format!(
            "pairs/s, holder cap {HOLDER_CAP}, sequential seed path on caller-owned \
             scratch, seed oracle alloc baseline {OVERLAP_SEQ_SEED_ALLOCS}"
        ),
        stages: None,
        latency_md: None,
    });
    entries.push(Entry {
        name: "overlap_par",
        meas: m_par,
        throughput: par.pair_count() as f64 / (m_par.ms / 1e3),
        config: format!(
            "pairs/s, holder cap {HOLDER_CAP}, parallel arena engine, speedup {:.2}x, \
             curve_equal true",
            m_seq.ms / m_par.ms
        ),
        stages: None,
        latency_md: None,
    });

    // Simulation sweeps at the paper's list sizes: the split-cell
    // work-stealing scheduler against the sequential whole-cell
    // oracle, cell results diffed exactly. A second, separately metered
    // pass records where the split path spends its time (the metering
    // reads clocks per request, so the headline timing comes from the
    // unmetered run). The pooled-scratch rebuild is also held to a
    // bounded allocation count — the seed harness allocated per cell
    // (552,916 / 862,793 per sweep); the split path must stay >= 10x
    // under that at repro scale.
    for (name, policy, seed_allocs) in [
        ("sim_sweep_lru", PolicyKind::Lru, 552_916u64),
        ("sim_sweep_history", PolicyKind::History, 862_793u64),
    ] {
        let configs = experiment::sweep_configs(policy, &PAPER_LIST_SIZES, false, SEED);
        let (sweep, m_split) = timed(|| experiment::sweep_cells(&arena, &configs));
        let (seq_sweep, m_seq) = timed(|| {
            experiment::sweep_list_sizes_seq(
                &caches,
                n_files,
                policy,
                &PAPER_LIST_SIZES,
                false,
                SEED,
            )
        });
        assert!(
            sweep.len() == seq_sweep.len()
                && sweep
                    .iter()
                    .zip(&seq_sweep)
                    .all(|((result, _), s)| *result == s.result),
            "{name}: split-cell sweep must match the sequential oracle cell for cell"
        );
        let (profiled, stages) =
            experiment::sweep_cells_threads_profiled(&arena, &configs, threads);
        assert!(
            profiled.iter().zip(&sweep).all(|(p, s)| p == s),
            "{name}: metered sweep pass must reproduce the unmetered cells"
        );
        let speedup = m_seq.ms / m_split.ms;
        let requests: u64 = sweep.iter().map(|(r, _)| r.requests).sum();
        eprintln!(
            "[bench_report] {name}: split {:.1} ms, seq {:.1} ms ({speedup:.2}x, \
             cells identical; stages intersect {:.1} / update {:.1} / merge {:.1} ms; \
             {} allocs)",
            m_split.ms,
            m_seq.ms,
            stages.intersect_ms,
            stages.update_ms,
            stages.merge_ms,
            m_split.alloc_count
        );
        if scale == Scale::Repro || scale == Scale::Paper {
            assert!(
                speedup >= 4.0,
                "{name}: split-cell sweep must clear the 4x floor over the sequential \
                 oracle at {scale:?} scale (got {speedup:.2}x)"
            );
            assert!(
                m_split.alloc_count * 10 <= seed_allocs,
                "{name}: pooled-scratch sweep must allocate >= 10x less than the \
                 {seed_allocs}-alloc seed harness (got {})",
                m_split.alloc_count
            );
        }
        entries.push(Entry {
            name,
            meas: m_split,
            throughput: requests as f64 / (m_split.ms / 1e3),
            config: format!(
                "requests/s over list sizes {PAPER_LIST_SIZES:?}, split-cell work stealing \
                 ({threads} threads), speedup {speedup:.2}x vs sequential oracle \
                 (speedup_floor 4x), cells_equal true, \
                 seed harness alloc baseline {seed_allocs}"
            ),
            stages: Some(stages),
            latency_md: None,
        });
    }

    // Randomization sweep (Fig. 21 shape): the legacy row shuffler as
    // oracle, then the arena shuffler run as prefix + checkpoint-resumed
    // suffix — the report's entry times the resumable arena path.
    let full = recommended_iterations(replicas);
    let checkpoints = [0, full / 4, full / 2, full];
    let (row_points, m_row) =
        timed(|| experiment::randomization_sweep(&caches, n_files, 10, &checkpoints, SEED));
    let (arena_points, m_arena) = timed(|| {
        let prefix = experiment::randomization_sweep_arena(&arena, 10, &checkpoints[..2], SEED);
        let suffix =
            experiment::randomization_sweep_resume(&prefix.checkpoint, 10, &checkpoints[2..], SEED);
        let mut points = prefix.points;
        points.extend(suffix.points);
        points
    });
    assert!(
        row_points.len() == arena_points.len()
            && row_points
                .iter()
                .zip(&arena_points)
                .all(|(r, a)| r.swaps == a.swaps && r.hit_rate == a.hit_rate),
        "checkpoint-resumed arena sweep must match the row-shuffler oracle exactly\n\
         row:   {row_points:?}\narena: {arena_points:?}"
    );
    let rand_speedup = m_row.ms / m_arena.ms;
    eprintln!(
        "[bench_report] randomization: row {:.1} ms, arena {:.1} ms ({rand_speedup:.2}x, \
         points identical across resume)",
        m_row.ms, m_arena.ms
    );
    entries.push(Entry {
        name: "randomize_arena",
        meas: m_arena,
        throughput: full as f64 / (m_arena.ms / 1e3),
        config: format!(
            "swap attempts/s, checkpoints {checkpoints:?}, list size 10, arena swap state \
             resumed from checkpoint after {}, speedup {rand_speedup:.2}x vs row-shuffler \
             baseline {:.1} ms, checkpoint_equal true",
            checkpoints[1], m_row.ms
        ),
        stages: None,
        latency_md: None,
    });
    if scale == Scale::Repro || scale == Scale::Paper {
        assert!(
            rand_speedup >= 1.5,
            "arena randomization sweep must be >= 1.5x the row sweep at {scale:?} scale \
             (got {rand_speedup:.2}x)"
        );
    }

    // Availability: the churn grid (4 rates × 4 policies × 2 querier
    // reactions) over the filtered caches, every cell's SearchHealth
    // ledger reconciled inside churn_grid.
    {
        let queries = [
            edonkey_semsearch::QueryPolicy::no_retry(),
            edonkey_semsearch::QueryPolicy::retry_evict(),
        ];
        let (cells, m) = timed(|| {
            experiment::churn_grid(
                &caches,
                n_files,
                20,
                &[0, 100, 250, 500],
                &queries,
                &[],
                edonkey_semsearch::IndexBackend::SingleServer,
                SEED ^ 0xc4c4,
                SEED,
            )
        });
        let attempts: u64 = cells.iter().map(|c| c.health.attempted).sum();
        eprintln!(
            "[bench_report] churn_sweep: {:.1} ms, {} cells, {attempts} attempts, {} allocs",
            m.ms,
            cells.len(),
            m.alloc_count
        );
        // The seed harness rebuilt every cell from scratch: 2,258,397
        // allocations per grid. The pooled split scheduler must hold a
        // >= 10x reduction.
        const CHURN_SEED_ALLOCS: u64 = 2_258_397;
        if scale == Scale::Repro || scale == Scale::Paper {
            assert!(
                m.alloc_count * 10 <= CHURN_SEED_ALLOCS,
                "churn_sweep: pooled grid must allocate >= 10x less than the \
                 {CHURN_SEED_ALLOCS}-alloc seed harness (got {})",
                m.alloc_count
            );
        }
        entries.push(Entry {
            name: "churn_sweep",
            meas: m,
            throughput: attempts as f64 / (m.ms / 1e3),
            config: format!(
                "query attempts/s over {} churn cells (rates 0/100/250/500 permille, \
                 4 policies, no_retry vs retry_evict), list size 20, pooled split \
                 scheduler, seed harness alloc baseline {CHURN_SEED_ALLOCS}",
                cells.len()
            ),
            stages: None,
            latency_md: None,
        });
    }

    // Pluggable index backends: the quiet LRU list-size sweep routed
    // through each IndexBackend at 1 and N threads. Three invariants are
    // asserted before the report writes: every backend is
    // thread-count-invariant; SingleServer through the trait is
    // bit-identical to the sequential pre-trait oracle; and with no
    // outage all three backends produce identical SimResults (routing
    // only changes how the fallback resolves, never which uploader
    // answers).
    {
        let sizes = [5usize, 20, 100];
        let backends = [
            edonkey_semsearch::IndexBackend::SingleServer,
            edonkey_semsearch::IndexBackend::Federated { n_servers: 8 },
            edonkey_semsearch::IndexBackend::Dht { replication_k: 3 },
        ];
        let oracle = experiment::sweep_list_sizes_seq(
            &caches,
            n_files,
            PolicyKind::Lru,
            &sizes,
            false,
            SEED,
        );
        let (runs, m) = timed(|| {
            backends
                .iter()
                .map(|&backend| {
                    let configs: Vec<_> =
                        experiment::sweep_configs(PolicyKind::Lru, &sizes, false, SEED)
                            .into_iter()
                            .map(|c| c.with_backend(backend))
                            .collect();
                    [1, threads].map(|t| experiment::sweep_cells_threads(&arena, &configs, t))
                })
                .collect::<Vec<_>>()
        });
        for (backend, run) in backends.iter().zip(&runs) {
            assert_eq!(
                run[0],
                run[1],
                "{}: backend sweep must be identical at 1 and {threads} threads",
                backend.name()
            );
        }
        assert!(
            runs[0][0]
                .iter()
                .zip(&oracle)
                .all(|((result, _), o)| *result == o.result),
            "single-server backend through the trait must be bit-identical to the \
             sequential pre-trait oracle"
        );
        for (backend, run) in backends.iter().zip(&runs).skip(1) {
            assert!(
                run[0]
                    .iter()
                    .zip(&runs[0][0])
                    .all(|((result, _), (single, _))| result == single),
                "{}: quiet run must report the same results as the single server",
                backend.name()
            );
        }
        let requests: u64 = runs
            .iter()
            .flat_map(|run| run.iter().flatten())
            .map(|(r, _)| r.requests)
            .sum();
        eprintln!(
            "[bench_report] index_backend_sweep: {:.1} ms, {} backends x {} sizes x 2 \
             thread counts, oracle and cross-backend results identical, {} allocs",
            m.ms,
            backends.len(),
            sizes.len(),
            m.alloc_count
        );
        // The DHT router used to allocate a sorted replica list per
        // final-miss lookup: 2,170,000 allocations per sweep at repro
        // scale. The alloc-free bitmask walk must hold a >= 10x
        // reduction.
        const BACKEND_SEED_ALLOCS: u64 = 2_170_000;
        if scale == Scale::Repro {
            assert!(
                m.alloc_count * 10 <= BACKEND_SEED_ALLOCS,
                "index_backend_sweep: alloc-free DHT routing must allocate >= 10x less \
                 than the {BACKEND_SEED_ALLOCS}-alloc seed sweep (got {})",
                m.alloc_count
            );
        }
        entries.push(Entry {
            name: "index_backend_sweep",
            meas: m,
            throughput: requests as f64 / (m.ms / 1e3),
            config: format!(
                "requests/s over backends [single, federated8, dht_k3], LRU sizes {sizes:?}, \
                 threads [1, {threads}], single_server_oracle_equal true, \
                 backends_equal_quiet true, thread_invariant true, \
                 seed sweep alloc baseline {BACKEND_SEED_ALLOCS}"
            ),
            stages: None,
            latency_md: None,
        });
    }

    // Always-on service mode: the trace replayed as a continuous timed
    // query stream through the sharded neighbour store, once per index
    // backend. Before the report writes, the harness asserts the
    // serving replay is bit-identical to the batch simulator (result,
    // health ledger, final neighbour lists) and — at repro/paper scale
    // — that sustained service throughput clears the 10M queries/s
    // floor. The entry reports simulated p50/p99/p999 query latency per
    // backend (single server pays one RTT; federation and DHT add
    // their hop costs on fallbacks).
    {
        let backends = [
            edonkey_semsearch::IndexBackend::SingleServer,
            edonkey_semsearch::IndexBackend::Federated { n_servers: 8 },
            edonkey_semsearch::IndexBackend::Dht { replication_k: 3 },
        ];
        let sim = SimConfig::lru(20).with_seed(SEED);
        let mut scratch = SimScratch::new();
        let (batch, batch_health) = simulate_arena_health_with_scratch(&arena, &sim, &mut scratch);
        let batch_lists = scratch.final_lists();
        let (reports, m) = timed(|| {
            backends.map(|backend| {
                serve_arena_threads(
                    &arena,
                    &ServeConfig::new(sim.clone().with_backend(backend)),
                    threads,
                )
            })
        });
        for (backend, report) in backends.iter().zip(&reports) {
            assert_eq!(
                report.result,
                batch,
                "{}: service replay must be bit-identical to the batch simulator",
                backend.name()
            );
            report.health.expect_reconciled(
                report.result.requests,
                report.result.one_hop_hits,
                &sim.clone().with_backend(*backend),
                0,
                0,
            );
        }
        assert_eq!(
            reports[0].health.search, batch_health,
            "single-server service health must equal the batch ledger"
        );
        assert_eq!(
            reports[0].lists, batch_lists,
            "service must end in the batch simulator's exact policy state"
        );
        let served: u64 = reports.iter().map(|r| r.health.served).sum();
        let qps = served as f64 / (m.ms / 1e3);
        let triples: Vec<(u64, u64, u64)> =
            reports.iter().map(|r| r.latency.p50_p99_p999()).collect();
        eprintln!(
            "[bench_report] service_mode: {:.1} ms, {served} queries served \
             ({qps:.0} q/s), latency p50/p99/p999 single {:?} federated8 {:?} dht_k3 {:?}",
            m.ms, triples[0], triples[1], triples[2]
        );
        if scale == Scale::Repro || scale == Scale::Paper {
            // The 10M q/s floor assumes the serving plane has cores to
            // shard over; on narrower machines it pro-rates per core
            // (full floor from 8 cores up), so the single-CPU verify
            // container still enforces its share of the budget.
            let floor = 10_000_000.0 * (threads.min(8) as f64 / 8.0);
            assert!(
                qps >= floor,
                "service mode must sustain >= {floor:.0} queries/s \
                 ({threads} threads) at {scale:?} scale (got {qps:.0})"
            );
        }
        entries.push(Entry {
            name: "service_mode",
            meas: m,
            throughput: qps,
            config: format!(
                "queries/s served over backends [single, federated8, dht_k3], LRU list 20, \
                 8 shards, unconstrained queues, service_equal true, qps_floor 10000000, \
                 latency_md p50/p99/p999: single {:?}, federated8 {:?}, dht_k3 {:?}",
                triples[0], triples[1], triples[2]
            ),
            stages: None,
            latency_md: Some(triples[0]),
        });
    }

    // Adversarial workload plane: sybil / pollution / free-rider
    // injection with the per-neighbour reputation defense. Four gates
    // hold before the report writes:
    //
    //  * quiet_adversary_equal — a seeded zero-fraction AdversaryPlan
    //    is bit-identical to the honest run (SimResult, SearchHealth
    //    ledger, every final neighbour list) for all 4 policies × 3
    //    backends, and the serving plane replays the same bytes at
    //    1, 2 and 8 threads;
    //  * honest_defense_noop — arming the reputation defense on an
    //    honest run changes nothing, bit for bit;
    //  * degradation_monotone — one-hop hits fall monotonically in the
    //    attacker fraction for each attack kind separately (the nested
    //    role bands make a larger fraction a superset of attackers);
    //  * defense_recovery_ok — at a 10% sybil+pollution mix the armed
    //    defense wins hits back, per policy. The loss splits two ways:
    //    attackers *refuse* (they hold content and won't serve it — no
    //    list repair recovers that part; the refusal-only twin plan
    //    `freeriders(seed, 100)` marks the exact same peer band, so it
    //    measures this floor directly) and attackers *capture* slots
    //    and records, which the defense can undo. At repro scale the
    //    floors bind: LRU and RareLru recover >= half the capture
    //    loss, Random's attacked run equals its twin bit-for-bit (its
    //    lists record nothing, so the capture channel provably doesn't
    //    exist), and History recovers >= an eighth — cumulative counts
    //    never age a stolen first-credit out, the sweep's headline
    //    brittleness finding (EXPERIMENTS.md).
    {
        use edonkey_semsearch::{AdversaryConfig, AvailabilityConfig, CHURN_POLICIES};
        let backends = [
            edonkey_semsearch::IndexBackend::SingleServer,
            edonkey_semsearch::IndexBackend::Federated { n_servers: 8 },
            edonkey_semsearch::IndexBackend::Dht { replication_k: 3 },
        ];
        let adversary_seed = SEED ^ 0xad5e;
        let config_for = |policy: PolicyKind,
                          backend: edonkey_semsearch::IndexBackend,
                          availability: AvailabilityConfig| SimConfig {
            list_size: 20,
            policy,
            two_hop: false,
            seed: SEED,
            availability: availability.with_backend(backend),
        };
        let mix = AdversaryConfig::sybils(adversary_seed, 50).with_polluters(50);
        let mut scratch = SimScratch::new();
        let mut requests_total: u64 = 0;
        let mut recovery = String::new();
        let ((), m) = timed(|| {
            // Gate 1+2: quiet plans and honest armed defenses are
            // byte-level no-ops, batch and serve, every policy ×
            // backend × thread count.
            for policy in CHURN_POLICIES {
                for backend in backends {
                    let honest = config_for(policy, backend, AvailabilityConfig::none());
                    let (h_result, h_health) =
                        simulate_arena_health_with_scratch(&arena, &honest, &mut scratch);
                    let h_lists = scratch.final_lists();
                    requests_total += h_result.requests;
                    let quiet = config_for(
                        policy,
                        backend,
                        AvailabilityConfig::none()
                            .with_adversary(AdversaryConfig::sybils(adversary_seed, 0)),
                    );
                    let (q_result, q_health) =
                        simulate_arena_health_with_scratch(&arena, &quiet, &mut scratch);
                    assert!(
                        q_result == h_result
                            && q_health == h_health
                            && scratch.final_lists() == h_lists,
                        "{policy:?}/{}: quiet adversary must be bit-identical to honest",
                        backend.name()
                    );
                    let armed = config_for(
                        policy,
                        backend,
                        AvailabilityConfig::none()
                            .with_adversary(AdversaryConfig::sybils(adversary_seed, 0))
                            .with_reputation(),
                    );
                    let (a_result, a_health) =
                        simulate_arena_health_with_scratch(&arena, &armed, &mut scratch);
                    assert!(
                        a_result == h_result
                            && a_health == h_health
                            && scratch.final_lists() == h_lists,
                        "{policy:?}/{}: armed defense on an honest run must be a no-op",
                        backend.name()
                    );
                    for t in [1usize, 2, 8] {
                        let report =
                            serve_arena_threads(&arena, &ServeConfig::new(quiet.clone()), t);
                        assert!(
                            report.result == h_result
                                && report.health.search == h_health
                                && report.lists == h_lists,
                            "{policy:?}/{}/{t} threads: quiet serve must replay honest bytes",
                            backend.name()
                        );
                    }
                }
            }
            // Gate 3: nested role bands — a larger attacker fraction is
            // a superset — so hits degrade monotonically per kind.
            let kinds: [(&str, fn(u64, u32) -> AdversaryConfig); 3] = [
                ("sybil", AdversaryConfig::sybils),
                ("polluter", AdversaryConfig::polluters),
                ("freerider", AdversaryConfig::freeriders),
            ];
            for policy in CHURN_POLICIES {
                for (kind, make) in kinds {
                    let mut prev = u64::MAX;
                    for permille in [0u32, 150, 300] {
                        let cfg = config_for(
                            policy,
                            edonkey_semsearch::IndexBackend::SingleServer,
                            AvailabilityConfig::none()
                                .with_adversary(make(adversary_seed, permille)),
                        );
                        let (result, health) =
                            simulate_arena_health_with_scratch(&arena, &cfg, &mut scratch);
                        health.expect_reconciled(&result, &cfg);
                        requests_total += result.requests;
                        assert!(
                            result.one_hop_hits <= prev,
                            "{policy:?}/{kind} at {permille} permille: hits must degrade \
                             monotonically in the attacker fraction"
                        );
                        prev = result.one_hop_hits;
                    }
                }
            }
            // Gate 4: the armed defense wins hits back from the 10%
            // mix. The refusal-only twin (`freeriders` over the same
            // nested band) separates the irreducible loss — attackers
            // hold content and refuse to serve it — from the capture
            // loss the defense can undo.
            let twin_mix = AdversaryConfig::freeriders(
                adversary_seed,
                mix.sybil_permille + mix.polluter_permille,
            );
            for policy in CHURN_POLICIES {
                let mut run = |availability: AvailabilityConfig| {
                    let cfg = config_for(
                        policy,
                        edonkey_semsearch::IndexBackend::SingleServer,
                        availability,
                    );
                    let (result, health) =
                        simulate_arena_health_with_scratch(&arena, &cfg, &mut scratch);
                    health.expect_reconciled(&result, &cfg);
                    (result, health)
                };
                let (honest, _) = run(AvailabilityConfig::none());
                let (twin, _) = run(AvailabilityConfig::none().with_adversary(twin_mix.clone()));
                let (attacked, _) = run(AvailabilityConfig::none().with_adversary(mix.clone()));
                let (defended, defended_health) = run(AvailabilityConfig::none()
                    .with_adversary(mix.clone())
                    .with_reputation());
                requests_total +=
                    honest.requests + twin.requests + attacked.requests + defended.requests;
                let (h, t, a, d) = (
                    honest.one_hop_hits,
                    twin.one_hop_hits,
                    attacked.one_hop_hits,
                    defended.one_hop_hits,
                );
                assert!(
                    a <= t && t <= h,
                    "{policy:?}: capture must not help the attack and refusal must not \
                     help the search (honest {h}, twin {t}, attacked {a})"
                );
                assert!(
                    d >= a,
                    "{policy:?}: the armed defense must never do worse than no defense \
                     (attacked {a}, defended {d})"
                );
                assert!(
                    defended_health.reputation_evictions > 0,
                    "{policy:?}: the defense must actually fire under a 10% mix"
                );
                if scale == Scale::Repro || scale == Scale::Paper {
                    // Recovery floors on the capture-attributable loss.
                    let floor_ok = match policy {
                        // Recency heals: >= half the capture loss back.
                        PolicyKind::Lru | PolicyKind::RareLru { .. } => 2 * (d - a) >= t - a,
                        // Random lists record nothing, so the capture
                        // channel provably does not exist.
                        PolicyKind::Random => a == t,
                        // Cumulative counts never age a stolen
                        // first-credit out: an eighth is what banning
                        // alone wins back.
                        PolicyKind::History => 8 * (d - a) >= t - a,
                    };
                    assert!(
                        floor_ok,
                        "{policy:?}: defense recovery floor violated at {scale:?} scale \
                         (honest {h}, twin {t}, attacked {a}, defended {d})"
                    );
                }
                write!(
                    recovery,
                    " {:?} {:.2}/{:.2}/{:.2}/{:.2}",
                    policy,
                    100.0 * honest.hit_rate(),
                    100.0 * twin.hit_rate(),
                    100.0 * attacked.hit_rate(),
                    100.0 * defended.hit_rate()
                )
                .expect("string write");
            }
        });
        eprintln!(
            "[bench_report] adversary_sweep: {:.1} ms, quiet plans and honest defenses \
             byte-identical, degradation monotone, recovery (honest/twin/attacked/\
             defended hit % per policy):{recovery}",
            m.ms
        );
        entries.push(Entry {
            name: "adversary_sweep",
            meas: m,
            throughput: requests_total as f64 / (m.ms / 1e3),
            config: format!(
                "requests/s over the adversary gates, list 20, mix 50 permille sybils + \
                 50 permille polluters vs the refusal-only twin, quiet_adversary_equal true, \
                 honest_defense_noop true, degradation_monotone true, \
                 defense_recovery_ok true, serve threads [1, 2, 8], \
                 recovery honest/twin/attacked/defended hit %:{recovery}"
            ),
            stages: None,
            latency_md: None,
        });
    }

    // Crawl robustness: a 25%-transient-fault crawl under the
    // retry+backoff policy, measured against a fault-free crawl of the
    // same (capped) population.
    {
        let mut cfg = scale.config(SEED);
        cfg.peers = cfg.peers.min(2_000);
        cfg.files = cfg.files.min(20_000);
        cfg.days = cfg.days.min(12);
        cfg.alias_dhcp_daily_prob = 0.0;
        cfg.alias_reinstall_daily_prob = 0.0;
        let crawl_peers = cfg.peers;
        let crawl_pop = edonkey_workload::Population::generate(cfg);
        let base = edonkey_netsim::CrawlerConfig {
            outage_days: vec![],
            ..Default::default()
        }
        .budget_for(crawl_peers, 2.0, 2.0);
        let (clean, _) = edonkey_netsim::run_crawl_full(
            &crawl_pop,
            edonkey_netsim::NetConfig::default(),
            base.clone(),
        );
        let faulted_cfg = edonkey_netsim::CrawlerConfig {
            fault: edonkey_netsim::FaultConfig {
                seed: SEED ^ 0xfa17,
                transient_rate: 0.25,
                ..edonkey_netsim::FaultConfig::none()
            },
            retry: edonkey_netsim::RetryPolicy::backoff(),
            ..base
        };
        let ((faulted, report), m) = timed(|| {
            edonkey_netsim::run_crawl_full(
                &crawl_pop,
                edonkey_netsim::NetConfig::default(),
                faulted_cfg,
            )
        });
        report
            .health
            .check_invariants()
            .expect("crawl health must reconcile");
        let recovery =
            100.0 * faulted.snapshot_count() as f64 / clean.snapshot_count().max(1) as f64;
        eprintln!(
            "[bench_report] crawl_fault_sweep: {:.1} ms, recovery {recovery:.1}% \
             ({} attempts, {} retries, {} timeouts)",
            m.ms, report.health.attempted, report.health.retries, report.health.timeouts
        );
        entries.push(Entry {
            name: "crawl_fault_sweep",
            meas: m,
            throughput: report.health.attempted as f64 / (m.ms / 1e3),
            config: format!(
                "attempts/s at 25% transient faults with retry+backoff over {crawl_peers} peers, \
                 recovery {recovery:.1}% of fault-free snapshots, \
                 {} retries, {} quarantined",
                report.health.retries, report.health.quarantined
            ),
            stages: None,
            latency_md: None,
        });
    }

    // Trace pipeline: the legacy row path is the oracle; the report's
    // entry times the arena-native CSR path, derived traces diffed
    // exactly (kept set and every snapshot).
    let (row_derived, m_row) = timed(|| {
        let filtered = filter(&w.full);
        extrapolate(&filtered.trace, ExtrapolateConfig::default())
    });
    let full_arena = TraceArena::from_trace(&w.full);
    let (arena_derived, m_arena) = timed(|| {
        let filtered = filter_arena(&full_arena);
        extrapolate_arena(&filtered.arena, ExtrapolateConfig::default())
    });
    let derived = arena_derived.to_derived_trace();
    assert_eq!(
        derived.kept, row_derived.kept,
        "arena pipeline must keep the same regular clients as the row pipeline"
    );
    assert_eq!(
        derived.trace, row_derived.trace,
        "arena pipeline must derive the identical extrapolated trace"
    );
    let pipeline_speedup = m_row.ms / m_arena.ms;
    eprintln!(
        "[bench_report] trace_pipeline: row {:.1} ms, arena {:.1} ms \
         ({pipeline_speedup:.2}x, derived traces identical)",
        m_row.ms, m_arena.ms
    );
    entries.push(Entry {
        name: "pipeline_par",
        meas: m_arena,
        throughput: w.full.snapshot_count() as f64 / (m_arena.ms / 1e3),
        config: format!(
            "snapshots/s, CSR filter/extrapolate with sharded per-client fill, \
             speedup {pipeline_speedup:.2}x vs legacy row-pipeline baseline {:.1} ms, \
             derived_equal true",
            m_row.ms
        ),
        stages: None,
        latency_md: None,
    });
    if scale == Scale::Repro || scale == Scale::Paper {
        assert!(
            pipeline_speedup >= 3.0,
            "arena pipeline must be >= 3x the row pipeline at {scale:?} scale \
             (got {pipeline_speedup:.2}x)"
        );
    }

    // Trace I/O: the full trace through the JSON and binary codecs.
    let dir = std::env::temp_dir().join(format!("edonkey_bench_io_{SEED}"));
    std::fs::create_dir_all(&dir).expect("create trace I/O scratch dir");
    let json_path = dir.join("full.json");
    let bin_path = dir.join("full.etrc");

    let (_, m_json_write) = timed(|| io::save_json(&w.full, &json_path).expect("save_json"));
    let (json_loaded, m_json_read) = timed(|| io::load_json(&json_path).expect("load_json"));
    assert_eq!(json_loaded, w.full, "JSON round trip must be lossless");
    let (_, m_bin_write) = timed(|| io::save_bin(&w.full, &bin_path).expect("save_bin"));
    let (bin_loaded, m_bin_read) = timed(|| io::load_bin(&bin_path).expect("load_bin"));
    assert_eq!(bin_loaded, w.full, "binary round trip must be lossless");

    let json_bytes = std::fs::metadata(&json_path).expect("stat json").len();
    let bin_bytes = std::fs::metadata(&bin_path).expect("stat bin").len();
    let read_speedup = m_json_read.ms / m_bin_read.ms;
    eprintln!(
        "[bench_report] trace io: json {json_bytes} B read {:.1} ms, \
         bin {bin_bytes} B read {:.1} ms ({read_speedup:.1}x)",
        m_json_read.ms, m_bin_read.ms
    );
    if scale == Scale::Repro || scale == Scale::Paper {
        assert!(
            read_speedup >= 5.0,
            "binary load must be >= 5x faster than JSON at {scale:?} scale \
             (got {read_speedup:.2}x)"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    entries.push(Entry {
        name: "trace_io_json_write",
        meas: m_json_write,
        throughput: json_bytes as f64 / (m_json_write.ms / 1e3),
        config: format!("bytes/s writing {json_bytes} B of JSON"),
        stages: None,
        latency_md: None,
    });
    entries.push(Entry {
        name: "trace_io_json_read",
        meas: m_json_read,
        throughput: json_bytes as f64 / (m_json_read.ms / 1e3),
        config: format!("bytes/s reading {json_bytes} B of JSON, round trip lossless"),
        stages: None,
        latency_md: None,
    });
    entries.push(Entry {
        name: "trace_io_bin_write",
        meas: m_bin_write,
        throughput: bin_bytes as f64 / (m_bin_write.ms / 1e3),
        config: format!("bytes/s writing {bin_bytes} B of binary columnar v1"),
        stages: None,
        latency_md: None,
    });
    entries.push(Entry {
        name: "trace_io_bin_read",
        meas: m_bin_read,
        throughput: bin_bytes as f64 / (m_bin_read.ms / 1e3),
        config: format!(
            "bytes/s reading {bin_bytes} B of binary columnar v1, round trip lossless, \
             {read_speedup:.1}x faster than JSON read"
        ),
        stages: None,
        latency_md: None,
    });

    // The out-of-core tier also runs (with exact cross-checks) at the
    // in-memory scales, so CI smokes the whole paper-scale path.
    out_of_core_tier(scale, threads, &mut entries);

    let path =
        std::env::var("EDONKEY_BENCH_REPORT").unwrap_or_else(|_| "BENCH_report.json".to_string());
    std::fs::write(&path, render_json(&entries, scale, n_peers, n_files))
        .expect("write bench report");
    eprintln!("[bench_report] wrote {path}");
}

/// RSS ceiling asserted by the out-of-core tier, in kB. `VmHWM` is a
/// process-lifetime high-water mark, so at the in-memory scales the
/// ceiling must also accommodate the battery that ran first; at paper
/// scale nothing else runs and the ceiling is the tier's real budget.
fn rss_ceiling_kb(scale: Scale) -> u64 {
    const GIB: u64 = 1024 * 1024;
    match scale {
        Scale::Test => 3 * GIB,
        Scale::Small => 6 * GIB,
        Scale::Repro => 14 * GIB,
        Scale::Paper => 8 * GIB,
    }
}

/// Maximum probability-percent divergence the pruned banded curve may
/// show against the exact correlation curve (checked at the in-memory
/// scales, where the exact engine is affordable), over points above
/// the pruning horizon with at least [`CURVE_MIN_SUPPORT`] pairs. The
/// smoke scales run with head bands of a handful of files, where
/// estimator rounding on 2–3-element sketch sets moves whole curve
/// points; the repro bound is the one the paper tier is held to.
fn curve_tolerance_pct(scale: Scale) -> f64 {
    match scale {
        Scale::Test => 20.0,
        Scale::Small => 12.5,
        Scale::Repro | Scale::Paper => 7.5,
    }
}

/// Minimum exact pair support for a curve point to enter the tolerance
/// comparison (smaller supports are sampling noise).
const CURVE_MIN_SUPPORT: usize = 30;

/// Streams the union static caches out of a binary trace file: one
/// [`edonkey_trace::DayArena`] resident at a time, per-peer rows merged
/// with amortized sort+dedup (compaction when a row doubles past its
/// last deduplicated size) and a final exact pass.
fn streamed_union_caches(path: &Path) -> (Vec<Vec<FileRef>>, usize) {
    let mut reader = TraceReader::open(path).expect("open streamed trace");
    let n_files = reader.files().len();
    let n_peers = reader.peers().len();
    let mut caches: Vec<Vec<FileRef>> = vec![Vec::new(); n_peers];
    let mut compact_at: Vec<u32> = vec![0; n_peers];
    while let Some(day) = reader.next_day_arena().expect("read streamed day") {
        for (peer, row) in day.iter() {
            let cache = &mut caches[peer as usize];
            cache.extend_from_slice(row);
            if cache.len() as u32 >= compact_at[peer as usize] {
                cache.sort_unstable();
                cache.dedup();
                compact_at[peer as usize] = (cache.len() * 2 + 16) as u32;
            }
        }
    }
    for cache in &mut caches {
        cache.sort_unstable();
        cache.dedup();
        cache.shrink_to_fit();
    }
    (caches, n_files)
}

/// The out-of-core paper tier: streaming generation straight to disk,
/// the streaming filter pass, union caches folded a day at a time, the
/// banded MinHash overlap histogram (never materializing the pair
/// list), and the windowed bounded-working-set sweep — with the RSS
/// high-water mark asserted under [`rss_ceiling_kb`] before the entry
/// is recorded. At the in-memory scales the tier additionally proves
/// `prefilter_off` bit-identical to the exact arena engine, holds the
/// pruned curve within [`curve_tolerance_pct`], and diffs the windowed
/// sweep against the work-stealing scheduler cell for cell.
///
/// Returns the filtered `(peers, files)` of the streamed workload.
fn out_of_core_tier(scale: Scale, threads: usize, entries: &mut Vec<Entry>) -> (usize, usize) {
    let dir = std::env::temp_dir().join(format!("edonkey_bench_ooc_{SEED}"));
    std::fs::create_dir_all(&dir).expect("create out-of-core scratch dir");
    let full_path = dir.join("full_stream.etrc");
    let filtered_path = dir.join("filtered_stream.etrc");
    let config = scale.config(SEED);
    let cfg = BandedOverlapConfig::paper_default(SEED);
    let tolerance = curve_tolerance_pct(scale);
    let sim_configs = experiment::sweep_configs(PolicyKind::Lru, &[20], false, SEED);
    const SWEEP_WINDOW: usize = 4096;

    let ((n_peers, n_files, stats, bstats, banded_curve, curve_diff, windowed), m) = timed(|| {
        let t0 = Instant::now();
        let (pop, stats) =
            generate_trace_streaming(&config, &full_path, threads).expect("stream generation");
        drop(pop); // tables are only needed while emitting days
        eprintln!(
            "[bench_report]   ooc stream-generate: {:.1} ms ({} days, {} rows, {} entries)",
            t0.elapsed().as_secs_f64() * 1e3,
            stats.days_written,
            stats.rows,
            stats.entries
        );
        let t1 = Instant::now();
        let filtered = filter_streaming(&full_path, &filtered_path).expect("streaming filter");
        eprintln!(
            "[bench_report]   ooc filter_streaming: {:.1} ms ({} peers kept)",
            t1.elapsed().as_secs_f64() * 1e3,
            filtered.kept.len()
        );
        let t2 = Instant::now();
        let (caches, n_files) = streamed_union_caches(&filtered_path);
        let arena = CacheArena::from_caches(&caches, n_files);
        drop(caches);
        let n_peers = arena.n_peers();
        eprintln!(
            "[bench_report]   ooc union arena: {:.1} ms ({} peers, {} replicas)",
            t2.elapsed().as_secs_f64() * 1e3,
            n_peers,
            arena.replica_count()
        );

        let t3 = Instant::now();
        let (hist, bstats) =
            banded::banded_overlap_histogram_with_threads(&arena, |_| true, &cfg, threads);
        let banded_curve = banded::curve_from_histogram(&hist);
        eprintln!(
            "[bench_report]   ooc banded histogram: {:.1} ms (tail {} / head {} files, \
             {} sketched peers, pruned {} of {} candidate pairs)",
            t3.elapsed().as_secs_f64() * 1e3,
            bstats.tail_files,
            bstats.head_files,
            bstats.sketched_peers,
            bstats.pruned_pairs,
            bstats.candidate_pairs
        );

        // In-memory scales: the exact engine is affordable, so prove the
        // tier's correctness claims against it before trusting them at
        // paper scale.
        let curve_diff = if scale == Scale::Paper {
            None
        } else {
            let exact = semantic::overlap_counts_arena_with_threads(
                &arena,
                |_| true,
                cfg.max_holders,
                threads,
            );
            let off = BandedOverlapConfig {
                prefilter_off: true,
                ..cfg
            };
            let (banded_exact, _) =
                banded::overlap_counts_banded_with_threads(&arena, |_| true, &off, threads);
            assert!(
                banded_exact.pair_count() == exact.pair_count()
                    && banded_exact.iter().eq(exact.iter()),
                "prefilter_off banded overlap must be bit-identical to the exact engine"
            );
            let exact_curve = semantic::correlation_curve(&exact);
            // Points at or below the admit floor (plus estimator slack)
            // shift by design — the floor drops head-only pairs with
            // that little overlap — so the tolerance applies above the
            // pruning horizon, on points with real pair support.
            let diff = banded::curve_max_abs_diff(
                &exact_curve,
                &banded_curve,
                cfg.admit_floor + 2,
                CURVE_MIN_SUPPORT,
            );
            assert!(
                diff <= tolerance,
                "pruned banded curve diverges {diff:.3} pct points from the exact curve \
                 (tolerance {tolerance})"
            );
            Some(diff)
        };

        // Bounded working set: the sweep folds fixed-size querier
        // windows into one running partial instead of holding every
        // cell's splits alive at once.
        let t4 = Instant::now();
        let windowed = experiment::sweep_cells_windowed(&arena, &sim_configs, SWEEP_WINDOW);
        eprintln!(
            "[bench_report]   ooc windowed sweep: {:.1} ms ({} cells, window {SWEEP_WINDOW})",
            t4.elapsed().as_secs_f64() * 1e3,
            windowed.len()
        );
        if scale != Scale::Paper {
            let full = experiment::sweep_cells(&arena, &sim_configs);
            assert_eq!(
                windowed, full,
                "windowed sweep must be bit-identical to the work-stealing sweep"
            );
        }
        (
            n_peers,
            n_files,
            stats,
            bstats,
            banded_curve,
            curve_diff,
            windowed,
        )
    });

    let ceiling = rss_ceiling_kb(scale);
    assert!(
        m.peak_rss_kb <= ceiling,
        "out-of-core tier blew the RSS ceiling at {scale:?} scale: \
         peak {} kB > ceiling {ceiling} kB",
        m.peak_rss_kb
    );
    let requests: u64 = windowed.iter().map(|(r, _)| r.requests).sum();
    eprintln!(
        "[bench_report] paper_scale: {:.1} ms, peak RSS {} kB (ceiling {ceiling} kB), \
         curve diff {:?}, {} curve points, {requests} sweep requests",
        m.ms,
        m.peak_rss_kb,
        curve_diff,
        banded_curve.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
    entries.push(Entry {
        name: "paper_scale",
        meas: m,
        throughput: stats.entries as f64 / (m.ms / 1e3),
        config: format!(
            "trace entries/s through the out-of-core tier (stream-generate -> \
             filter_streaming -> union arena -> banded histogram -> windowed sweep), \
             {} days, {} rows, band_cap {}, sketch_k {}, admit_floor {}, \
             tail {} / head {} files, pruned {} of {} candidate pairs, \
             curve_max_abs_diff {} (tolerance {tolerance}), \
             sweep window {SWEEP_WINDOW}, rss_ceiling_ok true \
             (peak {} kB <= {ceiling} kB), prefilter_curve_ok {}",
            stats.days_written,
            stats.rows,
            cfg.band_cap,
            cfg.sketch_k,
            cfg.admit_floor,
            bstats.tail_files,
            bstats.head_files,
            bstats.pruned_pairs,
            bstats.candidate_pairs,
            curve_diff.map_or("unchecked".to_string(), |d| format!("{d:.3}")),
            m.peak_rss_kb,
            // At paper scale the exact engine is unaffordable by design;
            // the curve/bit-identity proofs ran at the smaller scales.
            if curve_diff.is_some() {
                "true"
            } else {
                "proven_at_smaller_scales"
            }
        ),
        stages: None,
        latency_md: None,
    });
    (n_peers, n_files)
}

/// `{bench_name: {wall_ms, throughput, alloc_count, alloc_bytes,
/// peak_rss_kb, [stage_*_ms,] config}}` plus a `_meta` record. Sweep
/// entries carry the per-stage breakdown from their metered pass.
fn render_json(entries: &[Entry], scale: Scale, n_peers: usize, n_files: usize) -> String {
    let mut out = String::from("{\n");
    write!(
        out,
        "  \"_meta\": {{\"seed\": {SEED}, \"scale\": \"{scale:?}\", \
         \"peers\": {n_peers}, \"files\": {n_files}}}",
    )
    .expect("string write");
    for e in entries {
        write!(
            out,
            ",\n  \"{}\": {{\"wall_ms\": {:.3}, \"throughput\": {:.1}, \
             \"alloc_count\": {}, \"alloc_bytes\": {}, \"peak_rss_kb\": {}, ",
            e.name,
            e.meas.ms,
            e.throughput,
            e.meas.alloc_count,
            e.meas.alloc_bytes,
            e.meas.peak_rss_kb,
        )
        .expect("string write");
        if let Some(s) = &e.stages {
            write!(
                out,
                "\"stage_intersect_ms\": {:.3}, \"stage_update_ms\": {:.3}, \
                 \"stage_merge_ms\": {:.3}, ",
                s.intersect_ms, s.update_ms, s.merge_ms
            )
            .expect("string write");
        }
        if let Some((p50, p99, p999)) = e.latency_md {
            write!(
                out,
                "\"latency_p50_md\": {p50}, \"latency_p99_md\": {p99}, \
                 \"latency_p999_md\": {p999}, ",
            )
            .expect("string write");
        }
        write!(out, "\"config\": \"{}\"}}", e.config.replace('"', "'")).expect("string write");
    }
    out.push_str("\n}\n");
    out
}
