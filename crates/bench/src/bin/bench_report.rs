//! Benchmark-trajectory harness: times the workspace's canonical hot
//! paths at a fixed seed and writes `BENCH_report.json`, so successive
//! commits leave a comparable performance record.
//!
//! Benches (all deterministic, `SEED`-pinned):
//!
//! * `overlap_seq` / `overlap_par` — pairwise overlap counts over the
//!   filtered static caches, sequential seed path vs the parallel arena
//!   engine (the report records both and their speedup; the correlation
//!   curves are checked equal before anything is written);
//! * `arena_build` — packing the caches into a [`CacheArena`];
//! * `sim_sweep_lru` / `sim_sweep_history` — list-size sweeps over the
//!   paper's canonical sizes;
//! * `randomization_sweep` — the Fig. 21 shuffle-and-simulate loop;
//! * `trace_pipeline` — filter + extrapolate over the full trace;
//! * `trace_io_json_write` / `trace_io_json_read` and
//!   `trace_io_bin_write` / `trace_io_bin_read` — the full trace saved
//!   and reloaded through the JSON and binary columnar codecs (the
//!   binary read entry records its speedup over JSON, and at repro
//!   scale the harness asserts it stays ≥ 5×).
//!
//! Defaults to `--scale repro` (≈20 k peers); `--scale test|small`
//! gives a quick smoke run. Output path: `BENCH_report.json` in the
//! working directory, or `$EDONKEY_BENCH_REPORT`.

use std::fmt::Write as _;
use std::time::Instant;

use edonkey_analysis::semantic;
use edonkey_bench::{Scale, Workload, SEED};
use edonkey_semsearch::experiment::{self, PAPER_LIST_SIZES};
use edonkey_semsearch::neighbours::PolicyKind;
use edonkey_trace::compact::CacheArena;
use edonkey_trace::io;
use edonkey_trace::pipeline::{extrapolate, filter, ExtrapolateConfig};
use edonkey_trace::randomize::recommended_iterations;

/// Holder cap for the overlap benches (matches the Fig. 13 binaries:
/// blockbusters contribute quadratic work and no clustering signal).
const HOLDER_CAP: usize = 200;

struct Entry {
    name: &'static str,
    wall_ms: f64,
    /// Work units per second (units named in `config`).
    throughput: f64,
    config: String,
}

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    // This binary defaults to repro scale (the trajectory baseline);
    // the shared selector defaults to small, so only honor it when the
    // user actually picked a scale.
    let explicit =
        std::env::args().any(|a| a == "--scale") || std::env::var("EDONKEY_SCALE").is_ok();
    let scale = if explicit {
        Scale::from_env()
    } else {
        Scale::Repro
    };

    let w = Workload::generate(scale);
    let caches = w.filtered.static_caches();
    let n_files = w.filtered.files.len();
    let n_peers = caches.len();
    let replicas: usize = caches.iter().map(Vec::len).sum();
    eprintln!("[bench_report] {n_peers} peers, {n_files} files, {replicas} replicas");

    let mut entries: Vec<Entry> = Vec::new();

    // Arena build.
    let (arena, build_ms) = timed(|| CacheArena::from_caches(&caches, n_files));
    entries.push(Entry {
        name: "arena_build",
        wall_ms: build_ms,
        throughput: replicas as f64 / (build_ms / 1e3),
        config: format!("replicas/s over {replicas} replicas"),
    });

    // Overlap: sequential seed path vs parallel arena engine.
    let (seq, seq_ms) =
        timed(|| semantic::overlap_counts(&caches, n_files, |_| true, Some(HOLDER_CAP)));
    let (par, par_ms) =
        timed(|| semantic::overlap_counts_arena(&arena, |_| true, Some(HOLDER_CAP)));
    let seq_curve = semantic::correlation_curve(&seq);
    let par_curve = semantic::correlation_curve(&par);
    assert_eq!(
        seq_curve, par_curve,
        "parallel overlap must reproduce the sequential correlation curve exactly"
    );
    eprintln!(
        "[bench_report] overlap: seq {seq_ms:.1} ms, par {par_ms:.1} ms \
         ({:.2}x, {} pairs, curves identical)",
        seq_ms / par_ms,
        seq.pair_count()
    );
    entries.push(Entry {
        name: "overlap_seq",
        wall_ms: seq_ms,
        throughput: seq.pair_count() as f64 / (seq_ms / 1e3),
        config: format!("pairs/s, holder cap {HOLDER_CAP}, sequential seed path"),
    });
    entries.push(Entry {
        name: "overlap_par",
        wall_ms: par_ms,
        throughput: par.pair_count() as f64 / (par_ms / 1e3),
        config: format!(
            "pairs/s, holder cap {HOLDER_CAP}, parallel arena engine, speedup {:.2}x, \
             curve_equal true",
            seq_ms / par_ms
        ),
    });

    // Simulation sweeps at the paper's list sizes.
    for (name, policy) in [
        ("sim_sweep_lru", PolicyKind::Lru),
        ("sim_sweep_history", PolicyKind::History),
    ] {
        let (sweep, ms) = timed(|| {
            experiment::sweep_list_sizes(&caches, n_files, policy, &PAPER_LIST_SIZES, false, SEED)
        });
        let requests: u64 = sweep.iter().map(|p| p.result.requests).sum();
        entries.push(Entry {
            name,
            wall_ms: ms,
            throughput: requests as f64 / (ms / 1e3),
            config: format!("requests/s over list sizes {PAPER_LIST_SIZES:?}"),
        });
    }

    // Randomization sweep (Fig. 21 shape): a few checkpoints up to the
    // recommended full randomization.
    let full = recommended_iterations(replicas);
    let checkpoints = [0, full / 4, full / 2, full];
    let (_, ms) =
        timed(|| experiment::randomization_sweep(&caches, n_files, 10, &checkpoints, SEED));
    entries.push(Entry {
        name: "randomization_sweep",
        wall_ms: ms,
        throughput: full as f64 / (ms / 1e3),
        config: format!("swap attempts/s, checkpoints {checkpoints:?}, list size 10"),
    });

    // Availability: the churn grid (4 rates × 4 policies × 2 querier
    // reactions) over the filtered caches, every cell's SearchHealth
    // ledger reconciled inside churn_grid.
    {
        let queries = [
            edonkey_semsearch::QueryPolicy::no_retry(),
            edonkey_semsearch::QueryPolicy::retry_evict(),
        ];
        let (cells, ms) = timed(|| {
            experiment::churn_grid(
                &caches,
                n_files,
                20,
                &[0, 100, 250, 500],
                &queries,
                &[],
                SEED ^ 0xc4c4,
                SEED,
            )
        });
        let attempts: u64 = cells.iter().map(|c| c.health.attempted).sum();
        eprintln!(
            "[bench_report] churn_sweep: {ms:.1} ms, {} cells, {attempts} attempts",
            cells.len()
        );
        entries.push(Entry {
            name: "churn_sweep",
            wall_ms: ms,
            throughput: attempts as f64 / (ms / 1e3),
            config: format!(
                "query attempts/s over {} churn cells (rates 0/100/250/500 permille, \
                 4 policies, no_retry vs retry_evict), list size 20",
                cells.len()
            ),
        });
    }

    // Crawl robustness: a 25%-transient-fault crawl under the
    // retry+backoff policy, measured against a fault-free crawl of the
    // same (capped) population.
    {
        let mut cfg = scale.config(SEED);
        cfg.peers = cfg.peers.min(2_000);
        cfg.files = cfg.files.min(20_000);
        cfg.days = cfg.days.min(12);
        cfg.alias_dhcp_daily_prob = 0.0;
        cfg.alias_reinstall_daily_prob = 0.0;
        let crawl_peers = cfg.peers;
        let crawl_pop = edonkey_workload::Population::generate(cfg);
        let base = edonkey_netsim::CrawlerConfig {
            outage_days: vec![],
            ..Default::default()
        }
        .budget_for(crawl_peers, 2.0, 2.0);
        let (clean, _) = edonkey_netsim::run_crawl_full(
            &crawl_pop,
            edonkey_netsim::NetConfig::default(),
            base.clone(),
        );
        let faulted_cfg = edonkey_netsim::CrawlerConfig {
            fault: edonkey_netsim::FaultConfig {
                seed: SEED ^ 0xfa17,
                transient_rate: 0.25,
                ..edonkey_netsim::FaultConfig::none()
            },
            retry: edonkey_netsim::RetryPolicy::backoff(),
            ..base
        };
        let ((faulted, report), ms) = timed(|| {
            edonkey_netsim::run_crawl_full(
                &crawl_pop,
                edonkey_netsim::NetConfig::default(),
                faulted_cfg,
            )
        });
        report
            .health
            .check_invariants()
            .expect("crawl health must reconcile");
        let recovery =
            100.0 * faulted.snapshot_count() as f64 / clean.snapshot_count().max(1) as f64;
        eprintln!(
            "[bench_report] crawl_fault_sweep: {:.1} ms, recovery {recovery:.1}% \
             ({} attempts, {} retries, {} timeouts)",
            ms, report.health.attempted, report.health.retries, report.health.timeouts
        );
        entries.push(Entry {
            name: "crawl_fault_sweep",
            wall_ms: ms,
            throughput: report.health.attempted as f64 / (ms / 1e3),
            config: format!(
                "attempts/s at 25% transient faults with retry+backoff over {crawl_peers} peers, \
                 recovery {recovery:.1}% of fault-free snapshots, \
                 {} retries, {} quarantined",
                report.health.retries, report.health.quarantined
            ),
        });
    }

    // Trace pipeline.
    let (_, ms) = timed(|| {
        let filtered = filter(&w.full);
        extrapolate(&filtered.trace, ExtrapolateConfig::default())
    });
    entries.push(Entry {
        name: "trace_pipeline",
        wall_ms: ms,
        throughput: w.full.snapshot_count() as f64 / (ms / 1e3),
        config: "snapshots/s through filter + extrapolate".to_string(),
    });

    // Trace I/O: the full trace through the JSON and binary codecs.
    let dir = std::env::temp_dir().join(format!("edonkey_bench_io_{SEED}"));
    std::fs::create_dir_all(&dir).expect("create trace I/O scratch dir");
    let json_path = dir.join("full.json");
    let bin_path = dir.join("full.etrc");

    let (_, json_write_ms) = timed(|| io::save_json(&w.full, &json_path).expect("save_json"));
    let (json_loaded, json_read_ms) = timed(|| io::load_json(&json_path).expect("load_json"));
    assert_eq!(json_loaded, w.full, "JSON round trip must be lossless");
    let (_, bin_write_ms) = timed(|| io::save_bin(&w.full, &bin_path).expect("save_bin"));
    let (bin_loaded, bin_read_ms) = timed(|| io::load_bin(&bin_path).expect("load_bin"));
    assert_eq!(bin_loaded, w.full, "binary round trip must be lossless");

    let json_bytes = std::fs::metadata(&json_path).expect("stat json").len();
    let bin_bytes = std::fs::metadata(&bin_path).expect("stat bin").len();
    let read_speedup = json_read_ms / bin_read_ms;
    eprintln!(
        "[bench_report] trace io: json {json_bytes} B read {json_read_ms:.1} ms, \
         bin {bin_bytes} B read {bin_read_ms:.1} ms ({read_speedup:.1}x)"
    );
    if scale == Scale::Repro || scale == Scale::Paper {
        assert!(
            read_speedup >= 5.0,
            "binary load must be >= 5x faster than JSON at {scale:?} scale \
             (got {read_speedup:.2}x)"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    entries.push(Entry {
        name: "trace_io_json_write",
        wall_ms: json_write_ms,
        throughput: json_bytes as f64 / (json_write_ms / 1e3),
        config: format!("bytes/s writing {json_bytes} B of JSON"),
    });
    entries.push(Entry {
        name: "trace_io_json_read",
        wall_ms: json_read_ms,
        throughput: json_bytes as f64 / (json_read_ms / 1e3),
        config: format!("bytes/s reading {json_bytes} B of JSON, round trip lossless"),
    });
    entries.push(Entry {
        name: "trace_io_bin_write",
        wall_ms: bin_write_ms,
        throughput: bin_bytes as f64 / (bin_write_ms / 1e3),
        config: format!("bytes/s writing {bin_bytes} B of binary columnar v1"),
    });
    entries.push(Entry {
        name: "trace_io_bin_read",
        wall_ms: bin_read_ms,
        throughput: bin_bytes as f64 / (bin_read_ms / 1e3),
        config: format!(
            "bytes/s reading {bin_bytes} B of binary columnar v1, round trip lossless, \
             {read_speedup:.1}x faster than JSON read"
        ),
    });

    let path =
        std::env::var("EDONKEY_BENCH_REPORT").unwrap_or_else(|_| "BENCH_report.json".to_string());
    std::fs::write(&path, render_json(&entries, scale, n_peers, n_files))
        .expect("write bench report");
    eprintln!("[bench_report] wrote {path}");
}

/// `{bench_name: {wall_ms, throughput, config}}` plus a `_meta` record.
fn render_json(entries: &[Entry], scale: Scale, n_peers: usize, n_files: usize) -> String {
    let mut out = String::from("{\n");
    write!(
        out,
        "  \"_meta\": {{\"seed\": {SEED}, \"scale\": \"{scale:?}\", \
         \"peers\": {n_peers}, \"files\": {n_files}}}",
    )
    .expect("string write");
    for e in entries {
        write!(
            out,
            ",\n  \"{}\": {{\"wall_ms\": {:.3}, \"throughput\": {:.1}, \"config\": \"{}\"}}",
            e.name,
            e.wall_ms,
            e.throughput,
            e.config.replace('"', "'")
        )
        .expect("string write");
    }
    out.push_str("\n}\n");
    out
}
