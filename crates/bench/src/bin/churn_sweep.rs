//! Regenerates the `churn_sweep` ablation: server-less hit rate and
//! query load vs the peer churn rate for every list policy × querier
//! reaction, plus the server-outage stranded/recovered section.
//!
//! Usage: `cargo run --release -p edonkey-bench --bin churn_sweep [--scale test|small|repro|paper]`
fn main() {
    let scale = edonkey_bench::Scale::from_env();
    edonkey_bench::ablations::ablation_churn_sweep(scale);
}
