//! Calibration helper: prints the headline metrics the shape checks
//! gate on, for a grid of workload knobs. Not part of the reproduction
//! itself — a tool for tuning DESIGN.md §4.4's defaults.
use edonkey_semsearch::experiment;
use edonkey_semsearch::sim::{simulate, SimConfig};
use edonkey_trace::pipeline::filter;
use edonkey_trace::randomize::recommended_iterations;
use edonkey_workload::{generate_trace, WorkloadConfig};

fn probe(label: &str, config: WorkloadConfig) {
    let (_, trace) = generate_trace(config);
    let filtered = filter(&trace).trace;
    let caches = filtered.static_caches();
    let n_files = filtered.files.len();
    let replicas: usize = caches.iter().map(Vec::len).sum();

    let popularity = edonkey_analysis::view::popularity_of_caches(&caches, n_files);
    let top_spread = *popularity.iter().max().unwrap_or(&0) as f64
        / caches.iter().filter(|c| !c.is_empty()).count().max(1) as f64;
    let top15 = {
        let sizes: Vec<u64> = caches
            .iter()
            .map(|c| c.len() as u64)
            .filter(|&s| s > 0)
            .collect();
        edonkey_analysis::stats::top_share(&sizes, 0.15)
    };

    let lru20 = simulate(&caches, n_files, &SimConfig::lru(20)).hit_rate();
    let (no_up, _) = edonkey_semsearch::filters::remove_top_uploaders(&caches, 0.15);
    let lru20_noup = simulate(&no_up, n_files, &SimConfig::lru(20)).hit_rate();
    let lru5 = simulate(&caches, n_files, &SimConfig::lru(5)).hit_rate();
    let mut pop_sweep = String::new();
    for q in [0.05f64, 0.15, 0.30] {
        let (no_pop, _) = edonkey_semsearch::filters::remove_top_files(&caches, n_files, q);
        let left: u64 = no_pop.iter().map(|c| c.len() as u64).sum();
        let r = simulate(&no_pop, n_files, &SimConfig::lru(5));
        pop_sweep.push_str(&format!(
            " -pop{:.0}%={:.2}({:.0}%req)",
            q * 100.0,
            r.hit_rate(),
            100.0 * left as f64 / replicas as f64
        ));
    }
    let lru5_nopop = -1.0f64;
    let _ = lru5_nopop;
    let full = recommended_iterations(replicas);
    let sweep = experiment::randomization_sweep(&caches, n_files, 10, &[0, full], 3);

    println!(
        "{label}: top15={top15:.2} spread={top_spread:.3} lru20={lru20:.2} -up15={lru20_noup:.2} lru5={lru5:.2}{pop_sweep} rand: {:.2}->{:.2}",
        sweep[0].hit_rate, sweep[1].hit_rate
    );
}

fn main() {
    let base = || {
        let mut c = WorkloadConfig::test_scale(20060418);
        c.peers = 2_000;
        c.files = 40_000;
        c.topics = 400;
        c.days = 20; // mirror the integration tests: multi-day unions
        c
    };
    probe("t400      ", base());
    let mut c = base();
    c.file_attractiveness_alpha = 0.95;
    c.file_attractiveness_cap = 1_000.0;
    probe("deep pop  ", c);
    let mut c = base();
    c.files = 80_000;
    probe("files80k  ", c);
}
