//! Beyond-the-paper experiment: how much request traffic an AS-level
//! PeerCache index (Section 4.1's discussion) could keep local.
//! Usage: `cargo run --release -p edonkey-bench --bin peercache [--scale …]`
use edonkey_analysis::peercache;
use edonkey_bench::{f, Emitter, Scale, Workload};

fn main() {
    let w = Workload::generate(Scale::from_env());
    let mut e = Emitter::new("peercache");
    e.comment("PeerCache opportunity: request locality under the Section 5.1 replay model");
    let counts = peercache::request_locality(&w.filtered);
    e.comment("scope\thit_rate_pct");
    e.row(["same_as".to_string(), f(100.0 * counts.as_hit_rate(), 2)]);
    e.row([
        "same_country".to_string(),
        f(100.0 * counts.country_hit_rate(), 2),
    ]);
    e.blank();
    e.comment("per-AS: asn\tclients\tas_local_hit_pct");
    for (asn, clients, rate) in peercache::per_as_hit_rates(&w.filtered, 8) {
        e.row([asn.to_string(), clients.to_string(), f(100.0 * rate, 2)]);
    }
    e.blank();
    e.comment("by popularity band: lo\thi\tas_local_hit_pct");
    for ((lo, hi), rate) in peercache::as_hit_rate_by_popularity(
        &w.filtered,
        &[(1, 2), (3, 10), (11, 100), (101, u32::MAX)],
    ) {
        e.row([lo.to_string(), hi.to_string(), f(100.0 * rate, 2)]);
    }
    e.finish();
}
