//! Ablation study (DESIGN.md §7). Usage:
//! `cargo run --release -p edonkey-bench --bin ablation_policies [--scale test|small|repro|paper]`
fn main() {
    edonkey_bench::ablations::ablation_policies(edonkey_bench::Scale::from_env());
}
