//! Regenerates the paper's fig01 (see DESIGN.md §5). Usage:
//! `cargo run --release -p edonkey-bench --bin fig01 [--scale test|small|repro|paper]`
fn main() {
    let scale = edonkey_bench::Scale::from_env();
    let workload = edonkey_bench::Workload::generate(scale);
    edonkey_bench::figures_measure::fig01(&workload);
}
