//! Ablation study (DESIGN.md §7). Usage:
//! `cargo run --release -p edonkey-bench --bin ablation_randomize [--scale test|small|repro|paper]`
fn main() {
    edonkey_bench::ablations::ablation_randomize(edonkey_bench::Scale::from_env());
}
