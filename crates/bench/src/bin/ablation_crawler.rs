//! Ablation study (DESIGN.md §7). Usage:
//! `cargo run --release -p edonkey-bench --bin ablation_crawler [--scale test|small|repro|paper]`
fn main() {
    edonkey_bench::ablations::ablation_crawler(edonkey_bench::Scale::from_env());
}
