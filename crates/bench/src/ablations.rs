//! Ablations beyond the paper: each one switches off a single mechanism
//! of the workload model or the search design and measures what the
//! paper's headline metrics do (DESIGN.md §7).

use edonkey_analysis::{semantic, view};
use edonkey_netsim::{run_crawl_full, CrawlerConfig, FaultConfig, NetConfig, RetryPolicy};
use edonkey_semsearch::serve::{serve_arena_threads, ArrivalConfig, ServeConfig};
use edonkey_semsearch::sim::{
    simulate, simulate_arena_with_scratch, QueryPolicy, SimConfig, SimScratch,
};
use edonkey_semsearch::{adversary_grid, churn_grid, AdversaryConfig, ChurnCell, IndexBackend};
use edonkey_trace::compact::CacheArena;
use edonkey_trace::randomize::{recommended_iterations, ArenaShuffler};
use edonkey_workload::generate_trace;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{f, Emitter, Scale, SEED};

/// Interest-model strength: sweep `interest_mix` (β) from 0 and measure
/// both the clustering correlation at k = 3 and the LRU-20 hit rate.
///
/// β = 0 is the null model — if semantic clustering in the other figures
/// were an artefact, this column would look the same as the rest.
pub fn ablation_interest(scale: Scale) {
    let mut e = Emitter::new("ablation_interest");
    e.comment("Ablation: semantic-clustering strength (interest_mix sweep)");
    e.comment("interest_mix\tP(k=3)_pct\tlru20_hit_pct");
    for &beta in &[0.0, 0.15, 0.30, 0.45, 0.55, 0.70] {
        let mut config = scale.config(SEED);
        config.interest_mix = beta;
        let (_, trace) = generate_trace(config);
        let filtered = edonkey_trace::pipeline::filter(&trace).trace;
        let caches = filtered.static_caches();
        let n_files = filtered.files.len();
        let curve = semantic::clustering_correlation(&caches, n_files, |_| true, Some(400));
        let p3 = curve
            .iter()
            .find(|p| p.common == 3)
            .map(|p| p.probability_percent)
            .unwrap_or(0.0);
        let hit = simulate(&caches, n_files, &SimConfig::lru(20).with_seed(SEED)).hit_rate();
        e.row([f(beta, 2), f(p3, 2), f(100.0 * hit, 2)]);
    }
    e.finish();
}

/// Randomization-iteration sweep: how much clustering survives at a
/// given multiple of the prescribed ½·N·ln N iterations — validates the
/// appendix's sufficiency claim.
pub fn ablation_randomize(scale: Scale) {
    let mut e = Emitter::new("ablation_randomize");
    e.comment("Ablation: residual clustering vs randomization effort");
    e.comment("fraction_of_half_n_ln_n\tP(k=3)_pct\tswaps_performed");
    let (_, trace) = generate_trace(scale.config(SEED));
    let filtered = edonkey_trace::pipeline::filter(&trace).trace;
    let caches = filtered.static_caches();
    let n_files = filtered.files.len();
    let replicas: usize = caches.iter().map(Vec::len).sum();
    let full = recommended_iterations(replicas);
    // Popularity is swap-invariant, so the qualifying file set is fixed
    // across the whole sweep and can be computed once up front.
    let popularity = view::popularity_of_caches(&caches, n_files);
    let arena = CacheArena::from_caches(&caches, n_files);
    let mut shuffler = ArenaShuffler::new(&arena);
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xab1a);
    let mut applied = 0u64;
    for &fraction in &[0.0, 0.1, 0.25, 0.5, 1.0, 2.0] {
        let target = (fraction * full as f64) as u64;
        shuffler.run(target - applied, &mut rng);
        applied = target;
        let snapshot = shuffler.snapshot_arena();
        let curve = semantic::clustering_correlation_arena(
            &snapshot,
            |fr| popularity[fr.index()] == 3,
            None,
        );
        let p3 = curve
            .iter()
            .find(|p| p.common == 3)
            .map(|p| p.probability_percent)
            .unwrap_or(0.0);
        e.row([
            f(fraction, 2),
            f(p3, 2),
            shuffler.stats().performed.to_string(),
        ]);
    }
    e.finish();
}

/// Crawler bandwidth vs trace completeness: how measurement bias scales
/// with the browse budget.
pub fn ablation_crawler(scale: Scale) {
    let mut e = Emitter::new("ablation_crawler");
    e.comment("Ablation: crawler budget vs observed completeness");
    e.comment("coverage_budget\tobserved_peers\tobserved_files\tsnapshots");
    let mut config = scale.config(SEED);
    // The protocol crawl is heavier than the ideal observer; shrink.
    config.peers = config.peers.min(3_000);
    config.files = config.files.min(25_000);
    config.days = config.days.min(14);
    let population = edonkey_workload::Population::generate(config.clone());
    for &coverage in &[0.1, 0.3, 0.6, 1.0, 1.5] {
        let (trace, _) = edonkey_netsim::run_crawl(
            &population,
            edonkey_netsim::NetConfig::default(),
            edonkey_netsim::CrawlerConfig {
                outage_days: vec![],
                ..Default::default()
            }
            .budget_for(config.peers, coverage, coverage),
        );
        e.row([
            f(coverage, 2),
            trace.peers.len().to_string(),
            trace.files.len().to_string(),
            trace.snapshot_count().to_string(),
        ]);
    }
    e.finish();
}

/// Crawl robustness: coverage and the Fig. 18 policy ordering vs the
/// fault rate, for the no-retry and retry+backoff crawler policies.
///
/// The composite fault mix scales every transient fault kind with one
/// `rate` knob (connect timeouts at `rate`, mid-browse disconnects and
/// query drops at `rate/4`) so a single column orders the runs; NAT and
/// churn bursts are exercised separately by the test matrix.
pub fn ablation_fault_sweep(scale: Scale) {
    let mut e = Emitter::new("fault_sweep");
    e.comment("Ablation: crawl robustness vs transient-fault rate");
    e.comment(
        "fault_rate\tpolicy\tsnapshots\tcoverage_vs_clean_pct\tlru20_hit_pct\t\
         history20_hit_pct\trandom20_hit_pct",
    );
    let mut config = scale.config(SEED);
    // The protocol crawl is heavier than the ideal observer; shrink.
    config.peers = config.peers.min(2_000);
    config.files = config.files.min(20_000);
    config.days = config.days.min(12);
    // The netsim path evolves identities mechanistically; the
    // observer-side alias knobs do not apply here.
    config.alias_dhcp_daily_prob = 0.0;
    config.alias_reinstall_daily_prob = 0.0;
    let peers = config.peers;
    let population = edonkey_workload::Population::generate(config);
    let crawl = |rate: f64, retry: RetryPolicy| {
        let crawler_config = CrawlerConfig {
            outage_days: vec![],
            fault: FaultConfig {
                seed: SEED ^ 0xfa17,
                transient_rate: rate,
                disconnect_rate: rate / 4.0,
                query_drop_rate: rate / 4.0,
                ..FaultConfig::none()
            },
            retry,
            ..Default::default()
        }
        .budget_for(peers, 2.0, 2.0);
        run_crawl_full(&population, NetConfig::default(), crawler_config)
    };
    let (clean, _) = crawl(0.0, RetryPolicy::no_retry());
    let clean_snapshots = clean.snapshot_count().max(1);
    // One scratch pool serves every (rate, policy) row; each row packs
    // its crawled caches into an arena once and reuses it for all three
    // list policies.
    let mut scratch = SimScratch::new();
    for &rate in &[0.0, 0.1, 0.25, 0.5] {
        for (name, retry) in [
            ("no_retry", RetryPolicy::no_retry()),
            ("retry_backoff", RetryPolicy::backoff()),
        ] {
            let (trace, report) = crawl(rate, retry);
            report
                .health
                .check_invariants()
                .expect("crawl health must reconcile");
            let filtered = edonkey_trace::pipeline::filter(&trace).trace;
            let caches = filtered.static_caches();
            let n_files = filtered.files.len();
            let arena = CacheArena::from_caches(&caches, n_files);
            let mut hit = |c: SimConfig| {
                100.0
                    * simulate_arena_with_scratch(&arena, &c.with_seed(SEED), &mut scratch)
                        .hit_rate()
            };
            e.row([
                f(rate, 2),
                name.to_string(),
                trace.snapshot_count().to_string(),
                f(
                    100.0 * trace.snapshot_count() as f64 / clean_snapshots as f64,
                    1,
                ),
                f(hit(SimConfig::lru(20)), 2),
                f(hit(SimConfig::history(20)), 2),
                f(hit(SimConfig::random(20)), 2),
            ]);
        }
    }
    e.finish();
}

/// Renders a querier reaction as a stable column label.
fn query_label(q: &QueryPolicy) -> &'static str {
    if q.max_retries == 0 {
        "no_retry"
    } else {
        "retry_evict"
    }
}

/// Availability ablation (DESIGN.md §9): server-less hit rate and query
/// load vs the peer churn rate, for every list policy × querier
/// reaction, plus a server-outage section with stranded/recovered
/// accounting. Every cell's `SearchHealth` ledger is reconciled inside
/// `churn_grid` — a violation anywhere panics the sweep.
pub fn ablation_churn_sweep(scale: Scale) {
    let mut e = Emitter::new("churn_sweep");
    e.comment("Ablation: server-less search under peer churn (availability model)");
    e.comment(
        "churn_permille\tpolicy\tquery\thit_rate_pct\tmean_load\ttimed_out\tretried\t\
         evicted_stale\tprobed_stale\tserver_fallback",
    );
    let (_, trace) = generate_trace(scale.config(SEED));
    let filtered = edonkey_trace::pipeline::filter(&trace).trace;
    let caches = filtered.static_caches();
    let n_files = filtered.files.len();
    let peers = caches.len().max(1);
    let queries = [QueryPolicy::no_retry(), QueryPolicy::retry_evict()];
    let churn_seed = SEED ^ 0xc4c4;
    let mean_load =
        |cell: &ChurnCell| cell.result.messages_per_peer.iter().sum::<u64>() as f64 / peers as f64;
    for cell in churn_grid(
        &caches,
        n_files,
        20,
        &[0, 100, 250, 500],
        &queries,
        &[],
        IndexBackend::SingleServer,
        churn_seed,
        SEED,
    ) {
        e.row([
            cell.churn_permille.to_string(),
            cell.policy.name().to_string(),
            query_label(&cell.query).to_string(),
            f(100.0 * cell.result.hit_rate(), 2),
            f(mean_load(&cell), 2),
            cell.health.timed_out.to_string(),
            cell.health.retried.to_string(),
            cell.health.evicted_stale.to_string(),
            cell.health.probed_stale.to_string(),
            cell.health.server_fallback.to_string(),
        ]);
    }
    e.blank();
    e.comment("server outage on virtual days 7.. at 250 permille churn: stranded vs recovered");
    e.comment("policy\tquery\thit_rate_pct\tanswered\tserver_fallback\tstranded\trecovered");
    let outage: Vec<u32> = (7..200).collect();
    for cell in churn_grid(
        &caches,
        n_files,
        20,
        &[250],
        &queries,
        &outage,
        IndexBackend::SingleServer,
        churn_seed,
        SEED,
    ) {
        e.row([
            cell.policy.name().to_string(),
            query_label(&cell.query).to_string(),
            f(100.0 * cell.result.hit_rate(), 2),
            cell.health.answered.to_string(),
            cell.health.server_fallback.to_string(),
            cell.health.stranded.to_string(),
            cell.health.recovered.to_string(),
        ]);
    }
    e.finish();
}

/// Index-backend ablation (DESIGN.md §10): the Fig. 18 policy ordering
/// and the churn/outage matrix per pluggable index backend — single
/// server, federated servers, and the Kademlia-style DHT. Quiet rows
/// double as a cross-backend differential check: with no outage every
/// backend must report the same hit rate (routing only changes *how* the
/// fallback resolves, never *which* uploader answers).
pub fn ablation_index_backends(scale: Scale) {
    let mut e = Emitter::new("index_backend_sweep");
    e.comment("Ablation: pluggable index backends (single / federated / DHT)");
    e.comment(
        "backend\tchurn_permille\toutage\tpolicy\thit_rate_pct\tanswered\t\
         server_fallback\tstranded\trecovered\tforwarded\tdht_hops",
    );
    let (_, trace) = generate_trace(scale.config(SEED));
    let filtered = edonkey_trace::pipeline::filter(&trace).trace;
    let caches = filtered.static_caches();
    let n_files = filtered.files.len();
    let queries = [QueryPolicy::retry_evict()];
    let churn_seed = SEED ^ 0xc4c4;
    let backends = [
        IndexBackend::SingleServer,
        IndexBackend::Federated { n_servers: 8 },
        IndexBackend::Dht { replication_k: 3 },
    ];
    let outage: Vec<u32> = (7..200).collect();
    for backend in backends {
        for (label, days) in [("none", &[][..]), ("days_7_plus", &outage[..])] {
            for cell in churn_grid(
                &caches,
                n_files,
                20,
                &[0, 250],
                &queries,
                days,
                backend,
                churn_seed,
                SEED,
            ) {
                e.row([
                    backend.name(),
                    cell.churn_permille.to_string(),
                    label.to_string(),
                    cell.policy.name().to_string(),
                    f(100.0 * cell.result.hit_rate(), 2),
                    cell.health.answered.to_string(),
                    cell.health.server_fallback.to_string(),
                    cell.health.stranded.to_string(),
                    cell.health.recovered.to_string(),
                    cell.health.forwarded.to_string(),
                    cell.health.dht_hops.to_string(),
                ]);
            }
        }
    }
    e.finish();
}

/// Service-mode backpressure: the always-on serving plane under a
/// bounded ingress queue (tick 20 md, queue 12, 2 served per tick per
/// shard), swept over nested burst intensities per index backend. The
/// knee shows up as the p999 / deferral / shed columns turning over
/// while the hit rate holds — shed queries never reach the overlay
/// plane, so what degrades under load is *latency and coverage*, not
/// answer quality on the queries that do get served.
pub fn ablation_service_mode(scale: Scale) {
    let mut e = Emitter::new("ablation_service_mode");
    e.comment("Ablation: service-mode backpressure (burst sweep per index backend)");
    e.comment(
        "backend\tburst_permille\tp50_md\tp99_md\tp999_md\tserved\tdeferred\t\
         shed\tmax_queue_depth\thit_rate_pct",
    );
    let (_, trace) = generate_trace(scale.config(SEED));
    let filtered = edonkey_trace::pipeline::filter(&trace).trace;
    let caches = filtered.static_caches();
    let n_files = filtered.files.len();
    let arena = CacheArena::from_caches(&caches, n_files);
    let backends = [
        IndexBackend::SingleServer,
        IndexBackend::Federated { n_servers: 8 },
        IndexBackend::Dht { replication_k: 3 },
    ];
    for backend in backends {
        for &burst in &[0u32, 300, 600, 900] {
            let config = ServeConfig::new(SimConfig::lru(20).with_seed(SEED).with_backend(backend))
                .with_arrival(ArrivalConfig::bursty(SEED ^ 0x5e, burst, 40))
                .with_service(20, 12, 2);
            let report = serve_arena_threads(&arena, &config, 4);
            let (p50, p99, p999) = report.latency.p50_p99_p999();
            let served = report.health.served.max(1);
            e.row([
                backend.name(),
                burst.to_string(),
                p50.to_string(),
                p99.to_string(),
                p999.to_string(),
                report.health.served.to_string(),
                report.health.deferred.to_string(),
                report.health.shed.to_string(),
                report.health.max_queue_depth.to_string(),
                f(
                    100.0 * report.health.search.answered as f64 / served as f64,
                    2,
                ),
            ]);
        }
    }
    e.finish();
}

/// Adversary ablation (DESIGN.md §12): hit rate and the attack/defense
/// ledger per attack mix × list policy × {undefended, defended}, at
/// list size 20 under the single-server fallback. The honest rows
/// double as the no-op check — an armed defense on an honest run moves
/// no counter — and every cell's `SearchHealth` is reconciled inside
/// `adversary_grid`, so a ledger violation panics the sweep.
pub fn ablation_adversary(scale: Scale) {
    let mut e = Emitter::new("adversary_sweep");
    e.comment("Ablation: adversarial workload plane (sybil / pollution / free-riding)");
    e.comment(
        "sybil_permille\tpolluter_permille\tfreerider_permille\tpolicy\tdefended\t\
         hit_rate_pct\twasted_queries\tsybil_slots_held\tpolluted_acquisitions\t\
         reputation_evictions",
    );
    let (_, trace) = generate_trace(scale.config(SEED));
    let filtered = edonkey_trace::pipeline::filter(&trace).trace;
    let caches = filtered.static_caches();
    let n_files = filtered.files.len();
    let adversary_seed = SEED ^ 0xad5e;
    let mixes = [
        AdversaryConfig::none(),
        AdversaryConfig::sybils(adversary_seed, 150),
        AdversaryConfig::polluters(adversary_seed, 150),
        AdversaryConfig::freeriders(adversary_seed, 150),
        AdversaryConfig::sybils(adversary_seed, 50).with_polluters(50),
    ];
    for cell in adversary_grid(
        &caches,
        n_files,
        20,
        &mixes,
        QueryPolicy::no_retry(),
        IndexBackend::SingleServer,
        SEED,
    ) {
        e.row([
            cell.adversary.sybil_permille.to_string(),
            cell.adversary.polluter_permille.to_string(),
            cell.adversary.freerider_permille.to_string(),
            cell.policy.name().to_string(),
            cell.defended.to_string(),
            f(100.0 * cell.result.hit_rate(), 2),
            cell.health.wasted_queries.to_string(),
            cell.health.sybil_slots_held.to_string(),
            cell.health.polluted_acquisitions.to_string(),
            cell.health.reputation_evictions.to_string(),
        ]);
    }
    e.finish();
}

/// Policy-design sweep: LRU vs History vs Random vs a hybrid
/// ("popularity-aware" LRU that only records uploads of files below a
/// popularity cutoff — the fix sketched in Section 5.3.2 for keeping
/// rare-file specialists in the lists).
pub fn ablation_policies(scale: Scale) {
    let mut e = Emitter::new("ablation_policies");
    e.comment("Ablation: list policies incl. popularity-filtered LRU");
    e.comment("policy\tlist_size\thit_rate_pct");
    let (_, trace) = generate_trace(scale.config(SEED));
    let filtered = edonkey_trace::pipeline::filter(&trace).trace;
    let caches = filtered.static_caches();
    let n_files = filtered.files.len();
    // All twelve cells replay the same caches: pack once, pool scratch.
    let arena = CacheArena::from_caches(&caches, n_files);
    let mut scratch = SimScratch::new();
    for &size in &[5usize, 20, 100] {
        for config in [
            SimConfig::lru(size),
            SimConfig::history(size),
            SimConfig::random(size),
            SimConfig::rare_lru(size, 10),
        ] {
            let result =
                simulate_arena_with_scratch(&arena, &config.clone().with_seed(SEED), &mut scratch);
            e.row([
                config.policy.name().to_string(),
                size.to_string(),
                f(100.0 * result.hit_rate(), 2),
            ]);
        }
    }
    e.finish();
}
