//! Regeneration of Section 4 artefacts: Figs. 11–17.

use edonkey_analysis::{geo_clustering, overlap, semantic, view};
use edonkey_proto::query::FileKind;
use edonkey_trace::randomize::randomize_caches;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{f, Emitter, Workload, SEED};

fn concentration_figure(name: &str, level: geo_clustering::Level, w: &Workload) {
    let mut e = Emitter::new(name);
    let what = match level {
        geo_clustering::Level::Country => "country",
        geo_clustering::Level::AutonomousSystem => "autonomous system",
    };
    e.comment(&format!(
        "{name}: CDF of the % of a file's sources in its home {what}, by average popularity (filtered)"
    ));
    e.comment("min_avg_popularity\tpercent_at_home\tcdf");
    let thresholds = [1.0, 5.0, 10.0, 20.0, 50.0, 100.0];
    for (threshold, cdf) in geo_clustering::concentration_cdfs(&w.filtered, level, &thresholds) {
        if cdf.is_empty() {
            e.comment(&format!(
                "threshold {threshold}: no qualifying files at this scale"
            ));
            continue;
        }
        for pct in [
            0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 99.99,
        ] {
            e.row([f(threshold, 0), f(pct, 0), f(cdf.fraction_at_most(pct), 4)]);
        }
        e.blank();
    }
    e.finish();
}

/// Fig. 11: home-country concentration CDFs by popularity band.
pub fn fig11(w: &Workload) {
    concentration_figure("fig11", geo_clustering::Level::Country, w);
}

/// Fig. 12: home-AS concentration CDFs by popularity band.
pub fn fig12(w: &Workload) {
    concentration_figure("fig12", geo_clustering::Level::AutonomousSystem, w);
}

/// Holder cap for the pair-overlap index: files more popular than this
/// contribute quadratically many pairs while saying nothing about
/// interest clustering (the paper's own point in Fig. 14).
const HOLDER_CAP: usize = 200;

/// Fig. 13: the clustering correlation on the first extrapolated day,
/// plus rare/popular audio-file bands.
pub fn fig13(w: &Workload) {
    let mut e = Emitter::new("fig13");
    e.comment("Fig. 13: P(another common file | k files in common)");
    e.comment("series\tk\tprobability_pct\tpairs");
    // All files, first extrapolated day (the paper's day 348).
    let first_day = &w.extrapolated.days.first();
    if let Some(snap) = first_day {
        let mut caches = vec![Vec::new(); w.extrapolated.peers.len()];
        for (p, c) in &snap.caches {
            caches[p.index()] = c.clone();
        }
        let curve = semantic::clustering_correlation(
            &caches,
            w.extrapolated.files.len(),
            |_| true,
            Some(HOLDER_CAP),
        );
        for point in curve {
            e.row([
                "all_day1".to_string(),
                point.common.to_string(),
                f(point.probability_percent, 2),
                point.pairs.to_string(),
            ]);
        }
        e.blank();
    }
    // Audio files by popularity band, static filtered trace.
    let caches = w.filtered.static_caches();
    let popularity = view::popularity_of_caches(&caches, w.filtered.files.len());
    for (label, lo, hi) in [("audio_pop_1_10", 1u32, 10u32), ("audio_pop_30_40", 30, 40)] {
        let curve = semantic::clustering_correlation(
            &caches,
            w.filtered.files.len(),
            |fr| {
                w.filtered.files[fr.index()].kind == FileKind::Audio
                    && (lo..=hi).contains(&popularity[fr.index()])
            },
            None,
        );
        for point in curve {
            e.row([
                label.to_string(),
                point.common.to_string(),
                f(point.probability_percent, 2),
                point.pairs.to_string(),
            ]);
        }
        e.blank();
    }
    e.finish();
}

/// Fig. 14: correlation on the real vs randomized trace, for all files
/// and for popularity levels 3 and 5.
pub fn fig14(w: &Workload) {
    let mut e = Emitter::new("fig14");
    e.comment("Fig. 14: clustering correlation, trace vs randomized (filtered)");
    e.comment("panel\tseries\tk\tprobability_pct\tpairs");
    let caches = w.filtered.static_caches();
    let n_files = w.filtered.files.len();
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xf14);
    let (randomized, stats) = randomize_caches(caches.clone(), &mut rng);
    e.comment(&format!(
        "randomization: {} attempts, {} swaps performed",
        stats.attempted, stats.performed
    ));
    let popularity = view::popularity_of_caches(&caches, n_files);
    let rand_popularity = view::popularity_of_caches(&randomized, n_files);
    // Randomization preserves popularity, so one vector serves both.
    debug_assert_eq!(popularity, rand_popularity);
    for (panel, wanted) in [
        ("all", None::<u32>),
        ("popularity_3", Some(3)),
        ("popularity_5", Some(5)),
    ] {
        for (series, cache_set) in [("trace", &caches), ("random", &randomized)] {
            let curve = semantic::clustering_correlation(
                cache_set,
                n_files,
                |fr| wanted.is_none_or(|p| popularity[fr.index()] == p),
                if wanted.is_none() {
                    Some(HOLDER_CAP)
                } else {
                    None
                },
            );
            for point in curve.iter().take(40) {
                e.row([
                    panel.to_string(),
                    series.to_string(),
                    point.common.to_string(),
                    f(point.probability_percent, 2),
                    point.pairs.to_string(),
                ]);
            }
            e.blank();
        }
    }
    e.finish();
}

fn overlap_figure(name: &str, caption: &str, w: &Workload, groups: &[u32]) {
    let mut e = Emitter::new(name);
    e.comment(caption);
    e.comment("initial_overlap\tpairs\tday\tmean_overlap");
    for group in overlap::overlap_evolution(&w.extrapolated, groups, Some(5_000), Some(HOLDER_CAP))
    {
        for (day, mean) in &group.series {
            e.row([
                group.initial_overlap.to_string(),
                group.pairs.to_string(),
                day.to_string(),
                f(*mean, 3),
            ]);
        }
        e.blank();
    }
    e.finish();
}

/// Fig. 15: overlap evolution for initial overlaps 1–10.
pub fn fig15(w: &Workload) {
    overlap_figure(
        "fig15",
        "Fig. 15: overlap evolution, pairs with 1-10 initial common files (extrapolated)",
        w,
        &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
    );
}

/// Fig. 16: overlap evolution for initial overlaps 20–57.
pub fn fig16(w: &Workload) {
    overlap_figure(
        "fig16",
        "Fig. 16: overlap evolution, pairs with 20-57 initial common files (extrapolated)",
        w,
        &[20, 25, 30, 35, 40, 45, 51, 57],
    );
}

/// Fig. 17: overlap evolution for the largest initial overlaps present.
pub fn fig17(w: &Workload) {
    let top = overlap::largest_initial_overlaps(&w.extrapolated, 4, Some(HOLDER_CAP));
    let groups: Vec<u32> = top.iter().map(|(c, _)| *c).collect();
    let mut dedup = groups.clone();
    dedup.sort_unstable();
    dedup.dedup();
    overlap_figure(
        "fig17",
        "Fig. 17: overlap evolution for the largest initial overlaps (extrapolated)",
        w,
        &dedup,
    );
}
