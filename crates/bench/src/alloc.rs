//! Instrumented global allocator for the bench harness.
//!
//! Every `BENCH_report.json` entry carries `alloc_count` / `alloc_bytes`
//! (heap traffic during the timed region) and `peak_rss_kb` (the
//! process high-water mark, from `VmHWM` in `/proc/self/status`). The
//! allocation counters make "arena path does less heap work" a measured
//! claim instead of an asserted one; the RSS field bounds the memory
//! story of the streaming pipeline.
//!
//! The wrapper forwards to [`System`] and adds two relaxed atomic
//! increments per allocation — cheap enough to leave on for every bench
//! binary (it is registered as the crate-wide `#[global_allocator]` in
//! `lib.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// The counting allocator. Registered once, in `lib.rs`.
pub struct CountingAlloc;

// SAFETY: defers all allocation to `System`; the counters never affect
// the returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is new heap traffic; count the delta only, so a Vec
        // growing to N bytes reports ~N bytes, not ~2N.
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        System.realloc(ptr, layout, new_size)
    }
}

/// A point-in-time reading of the allocation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Heap allocations (including zeroed allocs and reallocs).
    pub count: u64,
    /// Bytes requested (realloc counts only the growth).
    pub bytes: u64,
}

/// Reads the counters. Subtract two snapshots to meter a region:
///
/// ```
/// let before = edonkey_bench::alloc::snapshot();
/// let v: Vec<u64> = (0..100).collect();
/// let stats = edonkey_bench::alloc::since(before);
/// assert!(stats.count >= 1 && stats.bytes >= 800);
/// drop(v);
/// ```
pub fn snapshot() -> AllocStats {
    AllocStats {
        count: ALLOC_COUNT.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

/// Counter deltas since `start` (saturating, in case of races with
/// other threads' frees — counts only ever grow, so this is exact for
/// single-threaded regions and an upper bound otherwise).
pub fn since(start: AllocStats) -> AllocStats {
    let now = snapshot();
    AllocStats {
        count: now.count.saturating_sub(start.count),
        bytes: now.bytes.saturating_sub(start.bytes),
    }
}

/// The process peak resident set size in KiB (`VmHWM`), or `None` off
/// Linux / when procfs is unavailable.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_observe_heap_traffic() {
        let before = snapshot();
        let v: Vec<u64> = (0..1000).collect();
        let stats = since(before);
        assert!(stats.count >= 1);
        assert!(stats.bytes >= 8000, "collected 8000B, saw {}", stats.bytes);
        drop(v);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if let Some(kb) = peak_rss_kb() {
            assert!(kb > 0);
        }
    }
}
