//! `edonkey-bench`: shared harness for the figure/table regeneration
//! binaries and the criterion benchmarks.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md §5). They share this harness: a scale selector, a cached
//! standard workload (population → crawl/observe → pipeline stages), and
//! a TSV emitter that writes both to stdout and to `EXPERIMENTS-data/`.

pub mod ablations;
pub mod alloc;
pub mod figures_cluster;
pub mod figures_measure;
pub mod figures_search;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use edonkey_trace::compact::TraceArena;
use edonkey_trace::model::Trace;
use edonkey_trace::pipeline::{extrapolate_arena, filter_arena, ExtrapolateConfig};
use edonkey_workload::{generate_trace, Population, WorkloadConfig};

/// Every bench binary allocates through the counting wrapper so
/// `BENCH_report.json` entries can carry heap-traffic fields.
#[global_allocator]
static GLOBAL_ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

/// Workload scale for regeneration runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale smoke runs (CI, examples).
    Test,
    /// The default: every shape emerges, minutes-scale.
    Small,
    /// Larger runs closer to the paper's statistics.
    Repro,
    /// Full paper scale (hours).
    Paper,
}

impl Scale {
    /// Reads the scale from `--scale <s>` argv or `EDONKEY_SCALE`,
    /// defaulting to [`Scale::Small`].
    pub fn from_env() -> Scale {
        let mut args = std::env::args().skip(1);
        let mut scale = std::env::var("EDONKEY_SCALE").ok();
        while let Some(arg) = args.next() {
            if arg == "--scale" {
                scale = args.next();
            }
        }
        match scale.as_deref() {
            Some("test") => Scale::Test,
            Some("small") | None => Scale::Small,
            Some("repro") => Scale::Repro,
            Some("paper") => Scale::Paper,
            Some(other) => panic!("unknown scale {other:?} (test|small|repro|paper)"),
        }
    }

    /// The workload configuration for this scale.
    pub fn config(self, seed: u64) -> WorkloadConfig {
        match self {
            Scale::Test => {
                let mut c = WorkloadConfig::test_scale(seed);
                c.days = 20;
                c
            }
            Scale::Small => {
                let mut c = WorkloadConfig {
                    peers: 8_000,
                    files: 160_000,
                    topics: 1_600,
                    ..WorkloadConfig::test_scale(seed)
                };
                // Identity churn at the netsim rates, so the filtering
                // stage has real duplicate-IP/uid aliases to remove and
                // Table 1 shows filtered < full at this scale.
                c.alias_dhcp_daily_prob = 0.02;
                c.alias_reinstall_daily_prob = 0.002;
                c
            }
            Scale::Repro => WorkloadConfig::repro_scale(seed),
            Scale::Paper => WorkloadConfig::paper_scale(seed),
        }
    }
}

/// The standard workload every figure binary starts from.
pub struct Workload {
    /// The generating population (ground truth). `None` when the full
    /// trace was loaded from a file instead of generated.
    pub population: Option<Population>,
    /// The observed ("full") trace.
    pub full: Trace,
    /// The filtered trace (static analyses).
    pub filtered: Trace,
    /// The extrapolated trace (dynamic analyses).
    pub extrapolated: Trace,
}

/// The workspace-wide default seed for regeneration runs.
pub const SEED: u64 = 20060418; // EuroSys'06 opening day.

/// Reads a trace override from `--trace <path>` argv or `EDONKEY_TRACE`.
///
/// When set, [`Workload::generate`] loads the full trace from this path
/// (any of the three on-disk formats, sniffed by
/// [`edonkey_trace::io::load_auto`]) instead of generating one.
pub fn trace_override() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    let mut path = std::env::var("EDONKEY_TRACE").ok();
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            path = args.next();
        }
    }
    path.map(PathBuf::from)
}

impl Workload {
    /// Generates the standard workload at `scale`, or derives it from a
    /// trace file when [`trace_override`] names one.
    pub fn generate(scale: Scale) -> Workload {
        if let Some(path) = trace_override() {
            return Workload::from_trace_file(&path);
        }
        eprintln!("[bench] generating workload at {scale:?} scale…");
        let config = scale.config(SEED);
        let (population, full) = generate_trace(config);
        Workload::derive(Some(population), full)
    }

    /// Builds the workload from a trace file in any supported format
    /// (binary, JSON, or compact — sniffed from the file contents).
    pub fn from_trace_file(path: &Path) -> Workload {
        eprintln!("[bench] loading trace from {}…", path.display());
        let full = edonkey_trace::io::load_auto(path)
            .unwrap_or_else(|e| panic!("load trace {}: {e}", path.display()));
        Workload::derive(None, full)
    }

    fn derive(population: Option<Population>, full: Trace) -> Workload {
        eprintln!(
            "[bench] trace: {} peers, {} files, {} days",
            full.peers.len(),
            full.files.len(),
            full.days.len()
        );
        // Arena-native derivation: filter and extrapolate run on CSR
        // buffers, row tables are materialized once at the end.
        let arena = TraceArena::from_trace(&full);
        let filtered_arena = filter_arena(&arena).arena;
        let filtered = filtered_arena.to_trace();
        let extrapolated = extrapolate_arena(&filtered_arena, ExtrapolateConfig::default())
            .arena
            .to_trace();
        eprintln!(
            "[bench] filtered: {} peers; extrapolated: {} peers",
            filtered.peers.len(),
            extrapolated.peers.len()
        );
        Workload {
            population,
            full,
            filtered,
            extrapolated,
        }
    }
}

/// A table/figure emitter: tab-separated, stdout plus
/// `EXPERIMENTS-data/<name>.tsv`.
pub struct Emitter {
    name: String,
    buffer: String,
}

impl Emitter {
    /// Starts an emitter for an experiment (e.g. `"fig05"`).
    pub fn new(name: &str) -> Emitter {
        Emitter {
            name: name.to_string(),
            buffer: String::new(),
        }
    }

    /// Emits a comment line (prefixed `#`).
    pub fn comment(&mut self, text: &str) {
        for line in text.lines() {
            writeln!(self.buffer, "# {line}").expect("string write");
        }
    }

    /// Emits one row of tab-separated cells.
    pub fn row<S: AsRef<str>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let joined: Vec<String> = cells.into_iter().map(|c| c.as_ref().to_string()).collect();
        writeln!(self.buffer, "{}", joined.join("\t")).expect("string write");
    }

    /// Emits a blank separator line.
    pub fn blank(&mut self) {
        self.buffer.push('\n');
    }

    /// Prints the experiment and writes `EXPERIMENTS-data/<name>.tsv`.
    ///
    /// Returns the output path.
    pub fn finish(self) -> PathBuf {
        print!("{}", self.buffer);
        let dir = PathBuf::from(
            std::env::var("EDONKEY_DATA_DIR").unwrap_or_else(|_| "EXPERIMENTS-data".into()),
        );
        std::fs::create_dir_all(&dir).expect("create data dir");
        let path = dir.join(format!("{}.tsv", self.name));
        std::fs::write(&path, &self.buffer).expect("write experiment data");
        eprintln!("[bench] wrote {}", path.display());
        path
    }
}

/// Formats a float with fixed precision (TSV cell helper).
pub fn f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_produce_valid_configs() {
        for scale in [Scale::Test, Scale::Small, Scale::Repro, Scale::Paper] {
            assert_eq!(scale.config(1).validate(), Ok(()), "{scale:?}");
        }
    }

    #[test]
    fn small_scale_exercises_the_alias_filter() {
        let c = Scale::Small.config(1);
        assert!(c.alias_dhcp_daily_prob > 0.0);
        assert!(c.alias_reinstall_daily_prob > 0.0);
        // The test preset stays alias-free (fixtures and differential
        // suites pin its byte-identical stream).
        let t = Scale::Test.config(1);
        assert_eq!(t.alias_dhcp_daily_prob, 0.0);
        assert_eq!(t.alias_reinstall_daily_prob, 0.0);
    }

    #[test]
    fn emitter_formats_tsv() {
        let mut e = Emitter::new("selftest");
        e.comment("two lines\nof comment");
        e.row(["a", "b"]);
        e.row([f(1.5, 2), f(2.0, 0)]);
        assert_eq!(e.buffer, "# two lines\n# of comment\na\tb\n1.50\t2\n");
    }

    #[test]
    fn tiny_workload_generates() {
        let w = Workload::generate(Scale::Test);
        assert!(w.filtered.peers.len() <= w.full.peers.len());
        assert!(w.extrapolated.peers.len() <= w.filtered.peers.len());
        assert!(!w.population.expect("generated workload").files.is_empty());
    }
}
