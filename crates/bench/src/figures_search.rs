//! Regeneration of Section 5 artefacts: Figs. 18–23 and Table 3.

use edonkey_semsearch::experiment;
use edonkey_semsearch::neighbours::PolicyKind;
use edonkey_semsearch::sim::{simulate, SimConfig};
use edonkey_trace::compact::CacheArena;
use edonkey_trace::model::FileRef;
use edonkey_trace::randomize::recommended_iterations;

use crate::{f, Emitter, Workload, SEED};

/// The list sizes every Section 5 sweep uses.
const SIZES: &[usize] = &[5, 10, 20, 40, 60, 100, 150, 200];

fn static_caches(w: &Workload) -> (Vec<Vec<FileRef>>, usize) {
    (w.filtered.static_caches(), w.filtered.files.len())
}

/// Fig. 18: hit rate vs list size for LRU, History and Random.
pub fn fig18(w: &Workload) {
    let mut e = Emitter::new("fig18");
    e.comment("Fig. 18: semantic-neighbour search hit rate (filtered static trace)");
    e.comment("policy\tlist_size\thit_rate_pct\trequests");
    let (caches, n_files) = static_caches(w);
    for (policy, sweep) in experiment::policy_comparison(&caches, n_files, SIZES, SEED) {
        for point in sweep {
            e.row([
                policy.name().to_string(),
                point.list_size.to_string(),
                f(100.0 * point.result.hit_rate(), 2),
                point.result.requests.to_string(),
            ]);
        }
        e.blank();
    }
    e.finish();
}

/// Fig. 19: LRU hit rate without the top 5/10/15 % uploaders.
pub fn fig19(w: &Workload) {
    let mut e = Emitter::new("fig19");
    e.comment("Fig. 19: LRU hit rate after removing the most generous uploaders");
    e.comment("removed_pct\tlist_size\thit_rate_pct\trequests");
    let (caches, n_files) = static_caches(w);
    for (q, sweep) in
        experiment::uploader_removal_grid(&caches, n_files, &[0.0, 0.05, 0.10, 0.15], SIZES, SEED)
    {
        for point in sweep {
            e.row([
                f(100.0 * q, 0),
                point.list_size.to_string(),
                f(100.0 * point.result.hit_rate(), 2),
                point.result.requests.to_string(),
            ]);
        }
        e.blank();
    }
    e.finish();
}

/// Fig. 20: LRU hit rate without the top 5/15/30 % most popular files.
pub fn fig20(w: &Workload) {
    let mut e = Emitter::new("fig20");
    e.comment("Fig. 20: LRU hit rate after removing the most popular files");
    e.comment("removed_pct\tlist_size\thit_rate_pct\trequests");
    let (caches, n_files) = static_caches(w);
    for (q, sweep) in
        experiment::file_removal_grid(&caches, n_files, &[0.0, 0.05, 0.15, 0.30], SIZES, SEED)
    {
        for point in sweep {
            e.row([
                f(100.0 * q, 0),
                point.list_size.to_string(),
                f(100.0 * point.result.hit_rate(), 2),
                point.result.requests.to_string(),
            ]);
        }
        e.blank();
    }
    e.finish();
}

/// Table 3: combined influence of generous uploaders and popular files.
pub fn table3(w: &Workload) {
    let mut e = Emitter::new("table3");
    e.comment("Table 3: combined removal of generous uploaders and popular files (LRU)");
    e.comment("uploaders_removed_pct\tfiles_removed_pct\tsize5_pct\tsize10_pct\tsize20_pct");
    let (caches, n_files) = static_caches(w);
    let grid = [
        (0.0, 0.0),
        (0.05, 0.0),
        (0.0, 0.05),
        (0.05, 0.05),
        (0.15, 0.0),
        (0.0, 0.15),
        (0.15, 0.15),
    ];
    for ((uploaders, files), sweep) in
        experiment::combined_removal_table(&caches, n_files, &grid, &[5, 10, 20], SEED)
    {
        e.row([
            f(100.0 * uploaders, 0),
            f(100.0 * files, 0),
            f(100.0 * sweep[0].result.hit_rate(), 1),
            f(100.0 * sweep[1].result.hit_rate(), 1),
            f(100.0 * sweep[2].result.hit_rate(), 1),
        ]);
    }
    e.finish();
}

/// Fig. 21: hit rate vs number of swaps on the progressively randomized
/// trace (LRU, 10 neighbours).
pub fn fig21(w: &Workload) {
    let mut e = Emitter::new("fig21");
    e.comment("Fig. 21: LRU-10 hit rate vs trace randomization (swap attempts)");
    e.comment("swaps\thit_rate_pct");
    let (caches, n_files) = static_caches(w);
    let replicas: usize = caches.iter().map(Vec::len).sum();
    let full = recommended_iterations(replicas);
    let checkpoints: Vec<u64> = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0]
        .iter()
        .map(|&x| (x * full as f64) as u64)
        .collect();
    let arena = CacheArena::from_caches(&caches, n_files);
    let run = experiment::randomization_sweep_arena(&arena, 10, &checkpoints, SEED);
    for point in run.points {
        e.row([point.swaps.to_string(), f(100.0 * point.hit_rate, 2)]);
    }
    e.comment(&format!(
        "full randomization = {full} attempts (0.5 * N * ln N)"
    ));
    e.finish();
}

/// Fig. 22: per-client query load (LRU, 5 neighbours), with and without
/// the top uploaders.
pub fn fig22(w: &Workload) {
    let mut e = Emitter::new("fig22");
    e.comment("Fig. 22: query load per client by rank (LRU, list size 5)");
    e.comment("removed_pct\tclient_rank\tmessages\t(summary rows follow data)");
    let (caches, n_files) = static_caches(w);
    for (q, sweep) in
        experiment::uploader_removal_grid(&caches, n_files, &[0.0, 0.05, 0.10, 0.15], &[5], SEED)
    {
        let result = &sweep[0].result;
        let loads = result.load_by_rank();
        // Log-sample the rank axis, as the paper's log-log plot does.
        let mut rank = 1usize;
        while rank <= loads.len() {
            e.row([
                f(100.0 * q, 0),
                rank.to_string(),
                loads[rank - 1].to_string(),
            ]);
            rank = (rank as f64 * 1.5).ceil() as usize;
        }
        e.comment(&format!(
            "removed {:.0}%: {} requests, mean {:.0} msgs/client, max {}",
            100.0 * q,
            result.requests,
            result.mean_load(),
            result.max_load()
        ));
        e.blank();
    }
    e.finish();
}

/// Fig. 23: two-hop search, with and without the top uploaders.
pub fn fig23(w: &Workload) {
    let mut e = Emitter::new("fig23");
    e.comment("Fig. 23: one-hop vs two-hop semantic search (LRU)");
    e.comment("series\tlist_size\thit_rate_pct");
    let (caches, n_files) = static_caches(w);
    let one_hop =
        experiment::sweep_list_sizes(&caches, n_files, PolicyKind::Lru, SIZES, false, SEED);
    for point in one_hop {
        e.row([
            "one_hop".to_string(),
            point.list_size.to_string(),
            f(100.0 * point.result.hit_rate(), 2),
        ]);
    }
    e.blank();
    let two_hop =
        experiment::sweep_list_sizes(&caches, n_files, PolicyKind::Lru, SIZES, true, SEED);
    for point in two_hop {
        e.row([
            "two_hop".to_string(),
            point.list_size.to_string(),
            f(100.0 * point.result.hit_rate(), 2),
        ]);
    }
    e.blank();
    for q in [0.05, 0.15] {
        let (reduced, _) = edonkey_semsearch::filters::remove_top_uploaders(&caches, q);
        for &size in &[5usize, 20, 100] {
            let result = simulate(
                &reduced,
                n_files,
                &SimConfig::lru(size).with_two_hop().with_seed(SEED),
            );
            e.row([
                format!("two_hop_minus_top{:.0}pct", 100.0 * q),
                size.to_string(),
                f(100.0 * result.hit_rate(), 2),
            ]);
        }
        e.blank();
    }
    e.finish();
}
