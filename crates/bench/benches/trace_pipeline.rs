//! Criterion bench: the trace pipeline (filtering, extrapolation,
//! randomization) on a test-scale trace — the per-run fixed cost of
//! every experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use edonkey_trace::pipeline::{extrapolate, filter, ExtrapolateConfig};
use edonkey_trace::randomize::Shuffler;
use edonkey_workload::{generate_trace, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_pipeline(c: &mut Criterion) {
    let mut config = WorkloadConfig::test_scale(1);
    config.days = 20;
    let (_, trace) = generate_trace(config);
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    group.bench_function("filter", |b| {
        b.iter(|| filter(std::hint::black_box(&trace)))
    });
    let filtered = filter(&trace).trace;
    group.bench_function("extrapolate", |b| {
        b.iter(|| {
            extrapolate(
                std::hint::black_box(&filtered),
                ExtrapolateConfig::default(),
            )
        })
    });
    let caches = filtered.static_caches();
    group.bench_function("randomize_10k_swaps", |b| {
        b.iter(|| {
            let mut shuffler = Shuffler::new(std::hint::black_box(caches.clone()));
            let mut rng = StdRng::seed_from_u64(7);
            shuffler.run(10_000, &mut rng);
            shuffler.into_caches()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
