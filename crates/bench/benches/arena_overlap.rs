//! Criterion bench: columnar arena construction and the overlap
//! engines (sequential seed path vs parallel arena path) on a small
//! synthetic population.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use edonkey_analysis::semantic;
use edonkey_bench::{Scale, Workload};
use edonkey_trace::compact::CacheArena;

fn arena_and_overlap(c: &mut Criterion) {
    let w = Workload::generate(Scale::Test);
    let caches = w.filtered.static_caches();
    let n_files = w.filtered.files.len();
    let replicas: usize = caches.iter().map(Vec::len).sum();

    let mut group = c.benchmark_group("arena");
    group.sample_size(20);
    group.throughput(Throughput::Elements(replicas as u64));
    group.bench_function("build", |b| {
        b.iter(|| CacheArena::from_caches(&caches, n_files))
    });
    group.finish();

    let arena = CacheArena::from_caches(&caches, n_files);
    let pairs = semantic::overlap_counts(&caches, n_files, |_| true, Some(200)).pair_count();

    let mut group = c.benchmark_group("overlap");
    group.sample_size(10);
    group.throughput(Throughput::Elements(pairs as u64));
    group.bench_function("sequential", |b| {
        b.iter(|| semantic::overlap_counts(&caches, n_files, |_| true, Some(200)))
    });
    group.bench_function("parallel_arena", |b| {
        b.iter(|| semantic::overlap_counts_arena(&arena, |_| true, Some(200)))
    });
    group.finish();
}

criterion_group!(benches, arena_and_overlap);
criterion_main!(benches);
