//! Criterion bench: the Section 5 search simulation — requests per
//! second under each neighbour policy, one- and two-hop.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use edonkey_semsearch::sim::{simulate, SimConfig};
use edonkey_trace::pipeline::filter;
use edonkey_workload::{generate_trace, WorkloadConfig};

fn bench_simulation(c: &mut Criterion) {
    let mut config = WorkloadConfig::test_scale(2);
    config.days = 10;
    let (_, trace) = generate_trace(config);
    let filtered = filter(&trace).trace;
    let caches = filtered.static_caches();
    let n_files = filtered.files.len();
    let requests: u64 = caches.iter().map(|c| c.len() as u64).sum();

    let mut group = c.benchmark_group("search_sim");
    group.sample_size(20);
    group.throughput(Throughput::Elements(requests));
    for (name, config) in [
        ("lru_20", SimConfig::lru(20)),
        ("history_20", SimConfig::history(20)),
        ("random_20", SimConfig::random(20)),
        ("lru_20_two_hop", SimConfig::lru(20).with_two_hop()),
        ("lru_200", SimConfig::lru(200)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| simulate(std::hint::black_box(&caches), n_files, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
