//! Criterion bench: MD4 digest and ed2k part-hashing throughput — the
//! hot path of any real client-side crawler or indexer built on this
//! protocol substrate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use edonkey_proto::hash::PartHasher;
use edonkey_proto::md4::Md4;

fn bench_md4(c: &mut Criterion) {
    let mut group = c.benchmark_group("md4");
    for size in [1usize << 10, 64 << 10, 1 << 20] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| Md4::digest(std::hint::black_box(&data)))
        });
    }
    group.finish();
}

fn bench_part_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("part_hashing");
    group.sample_size(10);
    // One full 9.5 MB part plus change.
    let data = vec![0x5au8; (edonkey_proto::hash::PART_SIZE + 4096) as usize];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("one_part_plus_tail", |b| {
        b.iter(|| {
            let mut h = PartHasher::new();
            for chunk in std::hint::black_box(&data).chunks(1 << 20) {
                h.update(chunk);
            }
            h.finalize()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_md4, bench_part_hashing);
criterion_main!(benches);
