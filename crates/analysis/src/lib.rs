//! `edonkey-analysis`: every measurement statistic of the paper's
//! Sections 2–4, as pure functions from traces to plot-ready series.
//!
//! Figure/table map (see DESIGN.md §5 for the full experiment index):
//!
//! | Paper artefact | Module |
//! |---|---|
//! | Fig. 1–3 (per-day counts) | [`daily`] |
//! | Table 1 (trace characteristics) | [`summary`] |
//! | Fig. 4 / Table 2 (geography) | [`geography`] |
//! | Fig. 5 (replication vs rank) | [`popularity`] |
//! | Fig. 6 (size CDFs by popularity) | [`sizes`] |
//! | Fig. 7 (contribution CDFs) | [`contribution`] |
//! | Fig. 8–10 (spread and ranks over time) | [`spread`] |
//! | Fig. 11/12 (geographic clustering) | [`geo_clustering`] |
//! | Fig. 13/14 (semantic correlation) | [`semantic`] |
//! | Fig. 15–17 (overlap evolution) | [`overlap`] |
//! | PeerCache opportunity (§4.1 discussion) | [`peercache`] |
//!
//! Shared plumbing lives in [`stats`] (CDFs, rank curves, shares) and
//! [`view`] (popularity vectors, inverted holder indexes, file spans).

pub mod banded;
pub mod contribution;
pub mod daily;
pub mod geo_clustering;
pub mod geography;
pub mod overlap;
pub mod peercache;
pub mod popularity;
pub mod semantic;
pub mod similarity;
pub mod sizes;
pub mod spread;
pub mod stats;
pub mod summary;
pub mod view;

pub use stats::Cdf;
pub use summary::{summarize, TraceSummary};
