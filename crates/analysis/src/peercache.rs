//! Quantifying the PeerCache opportunity (Section 4.1).
//!
//! The paper observes that 54 % of clients sit in five ASes and points
//! at operator-run caches (PeerCache) as the way to exploit it: *"a
//! cache is shared between clients belonging to the same AS … to avoid
//! the issue of network operators storing potential illegal contents,
//! caches may contain index rather than content."* This module measures
//! exactly how far that would go: for every would-be request (a cache
//! entry, under the Section 5.1 request model), could it have been
//! served from inside the requester's own AS or country?

use std::collections::HashMap;

use edonkey_trace::model::Trace;

use crate::view::{holders, static_popularity};

/// Locality of a request's best available source.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LocalityCounts {
    /// Requests servable by another peer in the same AS.
    pub same_as: u64,
    /// Requests servable in the same country (including same AS).
    pub same_country: u64,
    /// Requests with at least one other source anywhere.
    pub servable: u64,
    /// Requests considered (one per replica, excluding sole sources).
    pub total: u64,
}

impl LocalityCounts {
    /// Fraction of servable requests answerable within the AS.
    pub fn as_hit_rate(&self) -> f64 {
        if self.servable == 0 {
            return 0.0;
        }
        self.same_as as f64 / self.servable as f64
    }

    /// Fraction of servable requests answerable within the country.
    pub fn country_hit_rate(&self) -> f64 {
        if self.servable == 0 {
            return 0.0;
        }
        self.same_country as f64 / self.servable as f64
    }
}

/// Measures request locality over the trace's static caches.
///
/// Each `(peer, file)` cache entry stands for one request (the Section
/// 5.1 replay model); the question is whether *another* holder of the
/// file shares the requester's AS or country.
pub fn request_locality(trace: &Trace) -> LocalityCounts {
    let caches = trace.static_caches();
    let holders = holders(&caches, trace.files.len());
    let mut counts = LocalityCounts::default();
    for (peer_idx, cache) in caches.iter().enumerate() {
        let me = &trace.peers[peer_idx];
        for f in cache {
            counts.total += 1;
            let sources = &holders[f.index()];
            let mut any = false;
            let mut same_as = false;
            let mut same_country = false;
            for &s in sources {
                if s as usize == peer_idx {
                    continue;
                }
                any = true;
                let other = &trace.peers[s as usize];
                same_as |= other.asn == me.asn;
                same_country |= other.country == me.country;
            }
            if any {
                counts.servable += 1;
                if same_as {
                    counts.same_as += 1;
                }
                if same_country {
                    counts.same_country += 1;
                }
            }
        }
    }
    counts
}

/// Per-AS cache effectiveness: for the top ASes by client count, the
/// fraction of their members' servable requests answerable inside the
/// AS. Returns `(asn, clients, as_hit_rate)` sorted by clients.
pub fn per_as_hit_rates(trace: &Trace, top: usize) -> Vec<(u32, usize, f64)> {
    let caches = trace.static_caches();
    let holders = holders(&caches, trace.files.len());
    let mut clients_per_as: HashMap<u32, usize> = HashMap::new();
    for p in &trace.peers {
        *clients_per_as.entry(p.asn).or_insert(0) += 1;
    }
    let mut per_as: HashMap<u32, (u64, u64)> = HashMap::new(); // (local, servable)
    for (peer_idx, cache) in caches.iter().enumerate() {
        let me = &trace.peers[peer_idx];
        for f in cache {
            let sources = &holders[f.index()];
            let mut any = false;
            let mut local = false;
            for &s in sources {
                if s as usize == peer_idx {
                    continue;
                }
                any = true;
                local |= trace.peers[s as usize].asn == me.asn;
            }
            if any {
                let entry = per_as.entry(me.asn).or_insert((0, 0));
                entry.1 += 1;
                if local {
                    entry.0 += 1;
                }
            }
        }
    }
    let mut rows: Vec<(u32, usize, f64)> = per_as
        .into_iter()
        .map(|(asn, (local, servable))| {
            (
                asn,
                clients_per_as.get(&asn).copied().unwrap_or(0),
                if servable == 0 {
                    0.0
                } else {
                    local as f64 / servable as f64
                },
            )
        })
        .collect();
    rows.sort_by_key(|&(asn, clients, _)| (std::cmp::Reverse(clients), asn));
    rows.truncate(top);
    rows
}

/// Splits the AS hit rate by file popularity band — the cache helps
/// most where sources are plentiful, so this quantifies how much of the
/// benefit is popular-file traffic.
pub fn as_hit_rate_by_popularity(trace: &Trace, bands: &[(u32, u32)]) -> Vec<((u32, u32), f64)> {
    let caches = trace.static_caches();
    let holders = holders(&caches, trace.files.len());
    let popularity = static_popularity(trace);
    bands
        .iter()
        .map(|&(lo, hi)| {
            let mut local = 0u64;
            let mut servable = 0u64;
            for (peer_idx, cache) in caches.iter().enumerate() {
                let me = &trace.peers[peer_idx];
                for f in cache {
                    if !(lo..=hi).contains(&popularity[f.index()]) {
                        continue;
                    }
                    let mut any = false;
                    let mut is_local = false;
                    for &s in &holders[f.index()] {
                        if s as usize == peer_idx {
                            continue;
                        }
                        any = true;
                        is_local |= trace.peers[s as usize].asn == me.asn;
                    }
                    if any {
                        servable += 1;
                        if is_local {
                            local += 1;
                        }
                    }
                }
            }
            (
                (lo, hi),
                if servable == 0 {
                    0.0
                } else {
                    local as f64 / servable as f64
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::md4::Md4;
    use edonkey_proto::query::FileKind;
    use edonkey_trace::model::{CountryCode, FileInfo, PeerInfo, TraceBuilder};

    /// Two FR peers in AS 3215, one FR peer in AS 12322, one DE peer.
    fn build() -> Trace {
        let mut b = TraceBuilder::new();
        let mk = |b: &mut TraceBuilder, i: u8, cc: &str, asn: u32| {
            b.intern_peer(PeerInfo {
                uid: Md4::digest(&[i]),
                ip: i as u32,
                country: CountryCode::new(cc),
                asn,
            })
        };
        let a1 = mk(&mut b, 0, "FR", 3215);
        let a2 = mk(&mut b, 1, "FR", 3215);
        let fr3 = mk(&mut b, 2, "FR", 12322);
        let de = mk(&mut b, 3, "DE", 3320);
        let f = |b: &mut TraceBuilder, n: u8| {
            b.intern_file(FileInfo {
                id: Md4::digest(&[b'f', n]),
                size: 1,
                kind: FileKind::Audio,
            })
        };
        let f0 = f(&mut b, 0); // held by a1, a2 (same AS pair)
        let f1 = f(&mut b, 1); // held by a1, fr3 (same country, diff AS)
        let f2 = f(&mut b, 2); // held by a1, de (cross-country)
        let f3 = f(&mut b, 3); // held only by de (unservable)
        b.observe(1, a1, vec![f0, f1, f2]);
        b.observe(1, a2, vec![f0]);
        b.observe(1, fr3, vec![f1]);
        b.observe(1, de, vec![f2, f3]);
        b.finish()
    }

    #[test]
    fn locality_counts() {
        let c = request_locality(&build());
        // Requests: a1 {f0,f1,f2}, a2 {f0}, fr3 {f1}, de {f2,f3} → 7 total.
        assert_eq!(c.total, 7);
        // f3 has a single holder → unservable; the rest have partners.
        assert_eq!(c.servable, 6);
        // Same-AS: f0 both ways (a1↔a2) = 2.
        assert_eq!(c.same_as, 2);
        // Same-country adds f1 both ways (a1↔fr3) = 4.
        assert_eq!(c.same_country, 4);
        assert!((c.as_hit_rate() - 2.0 / 6.0).abs() < 1e-12);
        assert!((c.country_hit_rate() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn per_as_rates() {
        let rows = per_as_hit_rates(&build(), 10);
        assert_eq!(rows[0].0, 3215, "largest AS first");
        assert_eq!(rows[0].1, 2);
        // AS 3215's servable requests: a1 {f0,f1,f2}, a2 {f0};
        // locally answerable: both f0 requests → 2/4.
        assert!((rows[0].2 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn popularity_bands() {
        let rows = as_hit_rate_by_popularity(&build(), &[(1, 1), (2, 9)]);
        // Band (2,9): files with 2 holders: f0, f1, f2.
        let (_, rate) = rows[1];
        assert!((rate - 2.0 / 6.0).abs() < 1e-12);
        // Band (1,1): only f3, unservable → 0.
        assert_eq!(rows[0].1, 0.0);
    }

    #[test]
    fn empty_trace_is_zero() {
        let c = request_locality(&Trace::new());
        assert_eq!(c.total, 0);
        assert_eq!(c.as_hit_rate(), 0.0);
        assert_eq!(c.country_hit_rate(), 0.0);
        assert!(per_as_hit_rates(&Trace::new(), 5).is_empty());
    }
}
