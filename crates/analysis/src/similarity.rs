//! Peer-to-peer similarity metrics beyond raw overlap.
//!
//! The paper measures proximity as the raw number of common files (the
//! natural choice for "will this peer answer my next query"). Follow-up
//! systems (e.g. the epidemic overlay of related work [31]) use
//! normalized metrics so that whales don't dominate every ranking. This
//! module provides the standard family over sorted cache slices:
//!
//! * [`jaccard`] — `|A∩B| / |A∪B|`, symmetric, size-penalizing;
//! * [`cosine`] — `|A∩B| / √(|A|·|B|)`, the set-cosine;
//! * [`overlap_coefficient`] — `|A∩B| / min(|A|,|B|)`, subset-friendly;
//! * [`common`] — the paper's raw count, for completeness.

use edonkey_trace::model::FileRef;
use edonkey_trace::pipeline::sorted_intersection_len;

/// Raw common-file count (the paper's metric).
pub fn common(a: &[FileRef], b: &[FileRef]) -> usize {
    sorted_intersection_len(a, b)
}

/// Jaccard similarity in `[0,1]`; 0 when either cache is empty.
///
/// # Examples
///
/// ```
/// use edonkey_analysis::similarity::jaccard;
/// use edonkey_trace::model::FileRef;
///
/// let a = [FileRef(0), FileRef(1), FileRef(2)];
/// let b = [FileRef(1), FileRef(2), FileRef(3)];
/// assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
/// ```
pub fn jaccard(a: &[FileRef], b: &[FileRef]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = sorted_intersection_len(a, b);
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Set-cosine similarity in `[0,1]`; 0 when either cache is empty.
pub fn cosine(a: &[FileRef], b: &[FileRef]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = sorted_intersection_len(a, b) as f64;
    inter / ((a.len() as f64) * (b.len() as f64)).sqrt()
}

/// Overlap coefficient in `[0,1]`: 1 whenever one cache contains the
/// other; 0 when either is empty.
pub fn overlap_coefficient(a: &[FileRef], b: &[FileRef]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = sorted_intersection_len(a, b) as f64;
    inter / a.len().min(b.len()) as f64
}

/// Which metric to rank by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Raw common count.
    Common,
    /// Jaccard.
    Jaccard,
    /// Set-cosine.
    Cosine,
    /// Overlap coefficient.
    OverlapCoefficient,
}

impl Metric {
    /// Evaluates the metric.
    pub fn eval(&self, a: &[FileRef], b: &[FileRef]) -> f64 {
        match self {
            Metric::Common => common(a, b) as f64,
            Metric::Jaccard => jaccard(a, b),
            Metric::Cosine => cosine(a, b),
            Metric::OverlapCoefficient => overlap_coefficient(a, b),
        }
    }
}

/// The `k` most similar peers to `peer` under a metric, descending
/// (ties broken by peer index; the peer itself and zero-similarity
/// peers excluded).
///
/// Brute force over candidates — callers pass a candidate slice (e.g.
/// an inverted-index preselection) when the population is large.
pub fn most_similar(
    peer: usize,
    caches: &[Vec<FileRef>],
    candidates: impl IntoIterator<Item = usize>,
    metric: Metric,
    k: usize,
) -> Vec<(usize, f64)> {
    let mut scored: Vec<(usize, f64)> = candidates
        .into_iter()
        .filter(|&c| c != peer && c < caches.len())
        .map(|c| (c, metric.eval(&caches[peer], &caches[c])))
        .filter(|&(_, s)| s > 0.0)
        .collect();
    scored.sort_by(|x, y| {
        y.1.partial_cmp(&x.1)
            .expect("similarities are finite")
            .then(x.0.cmp(&y.0))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(ids: &[u32]) -> Vec<FileRef> {
        ids.iter().map(|&i| FileRef(i)).collect()
    }

    #[test]
    fn metric_values() {
        let a = f(&[0, 1, 2, 3]);
        let b = f(&[2, 3, 4, 5]);
        assert_eq!(common(&a, &b), 2);
        assert!((jaccard(&a, &b) - 2.0 / 6.0).abs() < 1e-12);
        assert!((cosine(&a, &b) - 0.5).abs() < 1e-12);
        assert!((overlap_coefficient(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn subset_behaviour_differs_by_metric() {
        let big = f(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let small = f(&[0, 1]);
        assert_eq!(
            overlap_coefficient(&big, &small),
            1.0,
            "subset maxes overlap coef"
        );
        assert!(
            jaccard(&big, &small) < 0.3,
            "jaccard penalizes the size gap"
        );
    }

    #[test]
    fn empty_caches_are_zero() {
        let a = f(&[0]);
        for m in [
            Metric::Common,
            Metric::Jaccard,
            Metric::Cosine,
            Metric::OverlapCoefficient,
        ] {
            assert_eq!(m.eval(&a, &[]), 0.0, "{m:?}");
            assert_eq!(m.eval(&[], &[]), 0.0, "{m:?}");
        }
    }

    #[test]
    fn bounds_hold() {
        let a = f(&[0, 1, 2]);
        let b = f(&[1, 2, 3, 4]);
        for m in [Metric::Jaccard, Metric::Cosine, Metric::OverlapCoefficient] {
            let v = m.eval(&a, &b);
            assert!((0.0..=1.0).contains(&v), "{m:?} = {v}");
            let same = m.eval(&a, &a);
            assert!((same - 1.0).abs() < 1e-12, "{m:?} self-similarity");
        }
    }

    #[test]
    fn ranking_and_exclusions() {
        let caches = vec![
            f(&[0, 1, 2, 3]), // peer 0
            f(&[0, 1, 2]),    // near-duplicate
            f(&[0]),          // small overlap
            f(&[9]),          // disjoint
            vec![],           // free-rider
        ];
        let top = most_similar(0, &caches, 0..caches.len(), Metric::Jaccard, 10);
        assert_eq!(top.len(), 2, "self, disjoint and empty are excluded");
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 2);
        let top1 = most_similar(0, &caches, 0..caches.len(), Metric::Common, 1);
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0], (1, 3.0));
    }
}
