//! Figs. 15/16/17: evolution of pairwise cache overlap over time.
//!
//! Pairs of clients are grouped by their overlap on the *first* analysis
//! day; each group's mean overlap is then tracked across the remaining
//! days. The paper's reading: small initial overlaps decay smoothly
//! (shared files age out), while large initial overlaps persist for
//! weeks *despite* heavy cache turnover — sustained interest proximity.

use std::collections::HashMap;

use edonkey_trace::compact::CacheArena;
use edonkey_trace::model::{PeerId, Trace};
use edonkey_trace::pipeline::sorted_intersection_len;

use crate::semantic::overlap_counts_arena;

/// One tracked group of pairs.
#[derive(Clone, Debug)]
pub struct OverlapGroup {
    /// The group's initial overlap (files in common on the first day).
    pub initial_overlap: u32,
    /// Number of pairs in the group (the paper annotates these).
    pub pairs: usize,
    /// `(day, mean overlap)` across the analysis window.
    pub series: Vec<(u32, f64)>,
}

/// Tracks mean overlap over time for pairs grouped by initial overlap.
///
/// * `initial_overlaps`: which groups to track (e.g. `1..=10` for
///   Fig. 15, `[20, 25, 30, 35, 40, 45, 51, 57]` for Fig. 16).
/// * `max_pairs_per_group`: optional cap on tracked pairs per group
///   (deterministic: first pairs in peer order) to bound the cost at
///   full scale; `None` tracks everything.
/// * `max_holders`: optional cap on per-file holder counts when forming
///   pairs (files above it contribute quadratically many pairs while
///   carrying no pair-specific signal); `None` uses every file.
///
/// Pairs are formed on the first trace day over peers observed that day.
pub fn overlap_evolution(
    trace: &Trace,
    initial_overlaps: &[u32],
    max_pairs_per_group: Option<usize>,
    max_holders: Option<usize>,
) -> Vec<OverlapGroup> {
    let Some(first) = trace.days.first() else {
        return Vec::new();
    };
    // Initial overlaps among first-day caches, packed columnar — no
    // per-peer clone of the snapshot.
    let n_peers = trace.peers.len();
    let arena = CacheArena::from_snapshot(first, n_peers, trace.files.len());
    let counts = overlap_counts_arena(&arena, |_| true, max_holders);
    let mut groups: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
    let wanted: std::collections::HashSet<u32> = initial_overlaps.iter().copied().collect();
    let mut pairs_sorted: Vec<((u32, u32), u32)> = counts.iter().collect();
    // Deterministic order regardless of hash-map iteration.
    pairs_sorted.sort_unstable_by_key(|&(pair, _)| pair);
    for (pair, overlap) in pairs_sorted {
        if wanted.contains(&overlap) {
            let group = groups.entry(overlap).or_default();
            if max_pairs_per_group.is_none_or(|cap| group.len() < cap) {
                group.push(pair);
            }
        }
    }

    let mut result: Vec<OverlapGroup> = initial_overlaps
        .iter()
        .filter_map(|&k| {
            groups.get(&k).map(|pairs| OverlapGroup {
                initial_overlap: k,
                pairs: pairs.len(),
                series: Vec::with_capacity(trace.days.len()),
            })
        })
        .collect();

    for snap in &trace.days {
        // Caches for this day, indexed by peer (empty when unobserved).
        let mut caches: Vec<&[edonkey_trace::model::FileRef]> = vec![&[]; n_peers];
        for (peer, cache) in &snap.caches {
            caches[peer.index()] = cache;
        }
        for group in &mut result {
            let pairs = &groups[&group.initial_overlap];
            let total: u64 = pairs
                .iter()
                .map(|&(a, b)| {
                    sorted_intersection_len(caches[a as usize], caches[b as usize]) as u64
                })
                .sum();
            group
                .series
                .push((snap.day, total as f64 / pairs.len().max(1) as f64));
        }
    }
    result
}

/// The pairs with the largest first-day overlaps (Fig. 17 tracks the
/// extreme groups: 327, 172, 161, 159 common files). Returns
/// `(overlap, pair)` descending, up to `k` entries.
pub fn largest_initial_overlaps(
    trace: &Trace,
    k: usize,
    max_holders: Option<usize>,
) -> Vec<(u32, (PeerId, PeerId))> {
    let Some(first) = trace.days.first() else {
        return Vec::new();
    };
    let arena = CacheArena::from_snapshot(first, trace.peers.len(), trace.files.len());
    let counts = overlap_counts_arena(&arena, |_| true, max_holders);
    let mut all: Vec<(u32, (u32, u32))> = counts.iter().map(|(p, c)| (c, p)).collect();
    all.sort_unstable_by_key(|&(c, p)| (std::cmp::Reverse(c), p));
    all.into_iter()
        .take(k)
        .map(|(c, (a, b))| (c, (PeerId(a), PeerId(b))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::md4::Md4;
    use edonkey_proto::query::FileKind;
    use edonkey_trace::model::{CountryCode, FileInfo, FileRef, PeerInfo, TraceBuilder};

    /// Two pairs: (p0,p1) start with overlap 2 and keep it; (p2,p3)
    /// start with overlap 1 and lose it on day 2.
    fn build() -> Trace {
        let mut b = TraceBuilder::new();
        let peers: Vec<_> = (0..4)
            .map(|i| {
                b.intern_peer(PeerInfo {
                    uid: Md4::digest(&[i]),
                    ip: i as u32,
                    country: CountryCode::new("NL"),
                    asn: 2,
                })
            })
            .collect();
        let files: Vec<FileRef> = (0..5)
            .map(|i| {
                b.intern_file(FileInfo {
                    id: Md4::digest(format!("f{i}").as_bytes()),
                    size: 1,
                    kind: FileKind::Audio,
                })
            })
            .collect();
        b.observe(1, peers[0], vec![files[0], files[1]]);
        b.observe(1, peers[1], vec![files[0], files[1], files[2]]);
        b.observe(1, peers[2], vec![files[3]]);
        b.observe(1, peers[3], vec![files[3], files[4]]);
        b.observe(2, peers[0], vec![files[0], files[1]]);
        b.observe(2, peers[1], vec![files[0], files[1]]);
        b.observe(2, peers[2], vec![files[4]]);
        b.observe(2, peers[3], vec![files[3]]);
        b.finish()
    }

    #[test]
    fn groups_and_series() {
        let trace = build();
        let groups = overlap_evolution(&trace, &[1, 2], None, None);
        assert_eq!(groups.len(), 2);
        let g1 = groups.iter().find(|g| g.initial_overlap == 1).unwrap();
        assert_eq!(g1.pairs, 1);
        assert_eq!(g1.series, vec![(1, 1.0), (2, 0.0)]);
        let g2 = groups.iter().find(|g| g.initial_overlap == 2).unwrap();
        assert_eq!(g2.series, vec![(1, 2.0), (2, 2.0)]);
    }

    #[test]
    fn missing_groups_are_omitted() {
        let trace = build();
        let groups = overlap_evolution(&trace, &[7], None, None);
        assert!(groups.is_empty());
    }

    #[test]
    fn pair_cap_is_respected() {
        let trace = build();
        let groups = overlap_evolution(&trace, &[1, 2], Some(1), None);
        for g in groups {
            assert!(g.pairs <= 1);
        }
    }

    #[test]
    fn largest_overlaps_ordering() {
        let trace = build();
        let top = largest_initial_overlaps(&trace, 2, None);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, 2);
        assert_eq!(top[0].1, (PeerId(0), PeerId(1)));
        assert_eq!(top[1].0, 1);
    }

    #[test]
    fn empty_trace() {
        assert!(overlap_evolution(&Trace::new(), &[1], None, None).is_empty());
        assert!(largest_initial_overlaps(&Trace::new(), 3, None).is_empty());
    }
}
