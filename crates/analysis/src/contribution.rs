//! Fig. 7: files and disk space shared per client, with and without
//! free-riders — plus the generosity-concentration headline ("the top
//! 15 % peers offer 75 % of the files").

use edonkey_trace::model::Trace;

use crate::stats::{top_share, Cdf};

/// Per-client contribution samples.
#[derive(Clone, Debug)]
pub struct Contribution {
    /// Files shared per client (static union), one entry per client.
    pub files: Vec<u64>,
    /// Bytes shared per client, aligned with `files`.
    pub bytes: Vec<u64>,
}

/// Computes per-client contributions from the static caches.
pub fn contributions(trace: &Trace) -> Contribution {
    let caches = trace.static_caches();
    let files: Vec<u64> = caches.iter().map(|c| c.len() as u64).collect();
    let bytes: Vec<u64> = caches
        .iter()
        .map(|c| c.iter().map(|f| trace.files[f.index()].size).sum())
        .collect();
    Contribution { files, bytes }
}

/// The four CDFs of Fig. 7.
pub struct ContributionCdfs {
    /// Files per client, all clients.
    pub files_all: Cdf,
    /// Files per client, free-riders excluded.
    pub files_sharers: Cdf,
    /// Bytes per client (in GB, the paper's axis), all clients.
    pub space_all: Cdf,
    /// Bytes per client in GB, free-riders excluded.
    pub space_sharers: Cdf,
}

/// Fig. 7: builds all four CDFs.
pub fn contribution_cdfs(trace: &Trace) -> ContributionCdfs {
    let c = contributions(trace);
    let gb = |b: u64| b as f64 / (1u64 << 30) as f64;
    ContributionCdfs {
        files_all: Cdf::from_samples(c.files.iter().map(|&f| f as f64).collect()),
        files_sharers: Cdf::from_samples(
            c.files
                .iter()
                .filter(|&&f| f > 0)
                .map(|&f| f as f64)
                .collect(),
        ),
        space_all: Cdf::from_samples(c.bytes.iter().map(|&b| gb(b)).collect()),
        space_sharers: Cdf::from_samples(
            c.files
                .iter()
                .zip(&c.bytes)
                .filter(|(&f, _)| f > 0)
                .map(|(_, &b)| gb(b))
                .collect(),
        ),
    }
}

/// Share of all shared files held by the top `fraction` of *sharing*
/// clients (free-riders hold nothing and would dilute the denominator's
/// meaning).
pub fn generosity_concentration(trace: &Trace, fraction: f64) -> f64 {
    let c = contributions(trace);
    let sharers: Vec<u64> = c.files.into_iter().filter(|&f| f > 0).collect();
    top_share(&sharers, fraction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::md4::Md4;
    use edonkey_proto::query::FileKind;
    use edonkey_trace::model::{CountryCode, FileInfo, PeerInfo, TraceBuilder};

    fn build() -> Trace {
        let mut b = TraceBuilder::new();
        let peers: Vec<_> = (0..4)
            .map(|i| {
                b.intern_peer(PeerInfo {
                    uid: Md4::digest(&[i]),
                    ip: i as u32,
                    country: CountryCode::new("IT"),
                    asn: 9,
                })
            })
            .collect();
        let files: Vec<_> = (0..10u8)
            .map(|i| {
                b.intern_file(FileInfo {
                    id: Md4::digest(&[b'f', i]),
                    size: 1 << 30, // 1 GB each
                    kind: FileKind::Video,
                })
            })
            .collect();
        // p0: 8 files, p1: 1 file, p2: 1 file, p3: free-rider.
        b.observe(1, peers[0], files[..8].to_vec());
        b.observe(1, peers[1], vec![files[8]]);
        b.observe(1, peers[2], vec![files[9]]);
        b.observe(1, peers[3], vec![]);
        b.finish()
    }

    #[test]
    fn contribution_vectors() {
        let c = contributions(&build());
        assert_eq!(c.files, vec![8, 1, 1, 0]);
        assert_eq!(c.bytes[0], 8 << 30);
        assert_eq!(c.bytes[3], 0);
    }

    #[test]
    fn cdfs_with_and_without_free_riders() {
        let cdfs = contribution_cdfs(&build());
        assert_eq!(cdfs.files_all.len(), 4);
        assert_eq!(cdfs.files_sharers.len(), 3);
        // All clients: 25 % share nothing.
        assert!((cdfs.files_all.fraction_at_most(0.0) - 0.25).abs() < 1e-12);
        // Sharers only: everyone shares at least one file.
        assert_eq!(cdfs.files_sharers.fraction_at_most(0.5), 0.0);
        assert!((cdfs.space_sharers.fraction_at_most(1.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn concentration() {
        // Top 1/3 of sharers (= p0) holds 8 of 10 files.
        let share = generosity_concentration(&build(), 1.0 / 3.0);
        assert!((share - 0.8).abs() < 1e-12);
    }
}
