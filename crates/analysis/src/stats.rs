//! Small statistics toolkit: empirical CDFs, rank curves, shares.
//!
//! Every figure in the paper is one of a handful of statistical shapes —
//! a CDF ("proportion of files"), a rank–frequency curve (log-log), or a
//! share table. These helpers produce them from raw samples.

/// An empirical cumulative distribution function over `f64` samples.
///
/// # Examples
///
/// ```
/// use edonkey_analysis::stats::Cdf;
///
/// let cdf = Cdf::from_samples(vec![1.0, 2.0, 2.0, 10.0]);
/// assert_eq!(cdf.fraction_at_most(0.5), 0.0);
/// assert_eq!(cdf.fraction_at_most(2.0), 0.75);
/// assert_eq!(cdf.fraction_at_most(10.0), 1.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are rejected).
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "CDF samples must not be NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x` (0 for an empty CDF).
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[rank - 1])
    }

    /// Evaluates the CDF at each of `points`, yielding `(x, F(x))` pairs —
    /// the exact series a figure plots.
    pub fn series(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points
            .iter()
            .map(|&x| (x, self.fraction_at_most(x)))
            .collect()
    }

    /// Evaluates the CDF at logarithmically spaced points spanning the
    /// sample range — convenient for the paper's log-x CDFs (Figs. 6, 7).
    pub fn log_series(&self, points_per_decade: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() {
            return Vec::new();
        }
        let lo = self.sorted[0].max(1e-9);
        let hi = *self.sorted.last().expect("non-empty");
        if hi <= lo {
            return vec![(lo, 1.0)];
        }
        let decades = (hi / lo).log10();
        let steps = ((decades * points_per_decade as f64).ceil() as usize).max(1);
        (0..=steps)
            .map(|i| {
                let x = lo * 10f64.powf(decades * i as f64 / steps as f64);
                (x, self.fraction_at_most(x))
            })
            .collect()
    }
}

/// A rank–frequency curve: values sorted descending, 1-indexed ranks.
///
/// This is the shape of Fig. 5 (sources per file vs file rank).
///
/// # Examples
///
/// ```
/// use edonkey_analysis::stats::rank_curve;
/// assert_eq!(rank_curve(vec![3, 9, 1]), vec![(1, 9), (2, 3), (3, 1)]);
/// ```
pub fn rank_curve(mut values: Vec<u64>) -> Vec<(usize, u64)> {
    values.sort_unstable_by(|a, b| b.cmp(a));
    values
        .into_iter()
        .enumerate()
        .map(|(i, v)| (i + 1, v))
        .collect()
}

/// Downsamples a rank curve logarithmically (plots with 10⁷ points are
/// pointless; the paper's figures are log-log).
pub fn log_downsample(curve: &[(usize, u64)], points_per_decade: usize) -> Vec<(usize, u64)> {
    if curve.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut next = 1.0f64;
    let factor = 10f64.powf(1.0 / points_per_decade as f64);
    for &(rank, v) in curve {
        if rank as f64 >= next {
            out.push((rank, v));
            while next <= rank as f64 {
                next *= factor;
            }
        }
    }
    out
}

/// Fits `log10(y) = a + b·log10(x)` by least squares over strictly
/// positive pairs, returning `(a, b)` — used by tests to check that a
/// rank curve's tail really is a power law (Fig. 5's "linear trend on a
/// log-log plot").
///
/// Returns `None` with fewer than two usable points.
pub fn loglog_slope(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    let usable: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|&(x, y)| (x.log10(), y.log10()))
        .collect();
    if usable.len() < 2 {
        return None;
    }
    let n = usable.len() as f64;
    let sx: f64 = usable.iter().map(|p| p.0).sum();
    let sy: f64 = usable.iter().map(|p| p.1).sum();
    let sxx: f64 = usable.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = usable.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    Some((a, b))
}

/// Gini-style concentration: the share of the total held by the top
/// `fraction` of values. Fig. 7's "top 15 % of peers offer 75 % of
/// files" is `top_share(sizes, 0.15) ≈ 0.75`.
///
/// # Examples
///
/// ```
/// use edonkey_analysis::stats::top_share;
/// let shares = top_share(&[1, 1, 1, 1, 96], 0.2);
/// assert!((shares - 0.96).abs() < 1e-9);
/// ```
pub fn top_share(values: &[u64], fraction: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<u64> = values.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let total: u128 = sorted.iter().map(|&v| v as u128).sum();
    if total == 0 {
        return 0.0;
    }
    let k = ((values.len() as f64 * fraction).round() as usize).clamp(1, values.len());
    let top: u128 = sorted[..k].iter().map(|&v| v as u128).sum();
    top as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basics() {
        let cdf = Cdf::from_samples(vec![5.0, 1.0, 3.0]);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf.fraction_at_most(0.0), 0.0);
        assert!((cdf.fraction_at_most(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((cdf.fraction_at_most(4.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cdf.fraction_at_most(5.0), 1.0);
    }

    #[test]
    fn cdf_quantiles() {
        let cdf = Cdf::from_samples((1..=100).map(|i| i as f64).collect());
        assert_eq!(cdf.quantile(0.5), Some(50.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
        assert_eq!(Cdf::from_samples(vec![]).quantile(0.5), None);
    }

    #[test]
    fn cdf_empty() {
        let cdf = Cdf::from_samples(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_most(1.0), 0.0);
        assert!(cdf.log_series(4).is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn cdf_rejects_nan() {
        let _ = Cdf::from_samples(vec![f64::NAN]);
    }

    #[test]
    fn cdf_series_monotone() {
        let cdf = Cdf::from_samples(vec![1.0, 10.0, 100.0, 1000.0, 10.0, 20.0]);
        let series = cdf.log_series(5);
        assert!(!series.is_empty());
        for w in series.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn rank_curve_sorted_descending() {
        let curve = rank_curve(vec![1, 100, 5, 5]);
        assert_eq!(curve, vec![(1, 100), (2, 5), (3, 5), (4, 1)]);
    }

    #[test]
    fn downsample_keeps_head_and_shape() {
        let curve: Vec<(usize, u64)> = (1..=10_000).map(|r| (r, (10_000 / r) as u64)).collect();
        let sampled = log_downsample(&curve, 4);
        assert!(sampled.len() < 30);
        assert_eq!(sampled[0], (1, 10_000));
        assert!(sampled.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn loglog_slope_recovers_power_law() {
        let points: Vec<(f64, f64)> = (1..=1000)
            .map(|r| (r as f64, 500.0 * (r as f64).powf(-0.8)))
            .collect();
        let (_, b) = loglog_slope(&points).unwrap();
        assert!((b + 0.8).abs() < 1e-6, "slope {b}");
        assert_eq!(loglog_slope(&[]), None);
        assert_eq!(loglog_slope(&[(1.0, 1.0)]), None);
    }

    #[test]
    fn top_share_bounds() {
        assert_eq!(top_share(&[], 0.5), 0.0);
        assert_eq!(top_share(&[0, 0], 0.5), 0.0);
        assert_eq!(top_share(&[7], 0.01), 1.0);
        let uniform = vec![10u64; 100];
        assert!((top_share(&uniform, 0.15) - 0.15).abs() < 1e-9);
    }
}
