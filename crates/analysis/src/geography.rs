//! Fig. 4 (clients per country) and Table 2 (top autonomous systems).

use std::collections::HashMap;

use edonkey_trace::model::{CountryCode, Trace};

/// Fig. 4: clients per country, descending, with fractional shares.
pub fn clients_per_country(trace: &Trace) -> Vec<(CountryCode, usize, f64)> {
    let mut counts: HashMap<CountryCode, usize> = HashMap::new();
    for peer in &trace.peers {
        *counts.entry(peer.country).or_insert(0) += 1;
    }
    let total = trace.peers.len().max(1);
    let mut rows: Vec<(CountryCode, usize, f64)> = counts
        .into_iter()
        .map(|(cc, n)| (cc, n, n as f64 / total as f64))
        .collect();
    rows.sort_by_key(|&(cc, n, _)| (std::cmp::Reverse(n), cc));
    rows
}

/// One row of Table 2.
#[derive(Clone, Debug, PartialEq)]
pub struct AsRow {
    /// Autonomous system number.
    pub asn: u32,
    /// Country hosting the AS (by its clients' country).
    pub country: CountryCode,
    /// Share of all clients, in `[0,1]` ("Global").
    pub global_share: f64,
    /// Share of the AS country's clients, in `[0,1]` ("National").
    pub national_share: f64,
    /// Clients in the AS.
    pub clients: usize,
}

/// Table 2: the top-`k` ASes by hosted clients.
pub fn top_autonomous_systems(trace: &Trace, k: usize) -> Vec<AsRow> {
    let mut by_as: HashMap<u32, (usize, CountryCode)> = HashMap::new();
    let mut by_country: HashMap<CountryCode, usize> = HashMap::new();
    for peer in &trace.peers {
        let entry = by_as.entry(peer.asn).or_insert((0, peer.country));
        entry.0 += 1;
        *by_country.entry(peer.country).or_insert(0) += 1;
    }
    let total = trace.peers.len().max(1);
    let mut rows: Vec<AsRow> = by_as
        .into_iter()
        .map(|(asn, (clients, country))| AsRow {
            asn,
            country,
            global_share: clients as f64 / total as f64,
            national_share: clients as f64 / *by_country.get(&country).expect("seen") as f64,
            clients,
        })
        .collect();
    rows.sort_by_key(|r| (std::cmp::Reverse(r.clients), r.asn));
    rows.truncate(k);
    rows
}

/// The combined share of the top-`k` ASes — the paper notes the top five
/// host 54 % of all clients.
pub fn top_as_combined_share(trace: &Trace, k: usize) -> f64 {
    top_autonomous_systems(trace, k)
        .iter()
        .map(|r| r.global_share)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::md4::Md4;
    use edonkey_trace::model::{PeerInfo, TraceBuilder};

    fn build() -> Trace {
        let mut b = TraceBuilder::new();
        let spec = [
            ("FR", 3215u32, 3),
            ("FR", 12322, 1),
            ("DE", 3320, 4),
            ("ES", 3352, 2),
        ];
        let mut i = 0u8;
        for (cc, asn, n) in spec {
            for _ in 0..n {
                b.intern_peer(PeerInfo {
                    uid: Md4::digest(&[i]),
                    ip: i as u32,
                    country: CountryCode::new(cc),
                    asn,
                });
                i += 1;
            }
        }
        b.finish()
    }

    #[test]
    fn country_distribution_descending() {
        let rows = clients_per_country(&build());
        assert_eq!(rows[0].0, CountryCode::new("DE"));
        assert_eq!(rows[0].1, 4);
        assert!((rows[0].2 - 0.4).abs() < 1e-12);
        assert_eq!(rows[1].0, CountryCode::new("FR"));
        assert_eq!(rows[1].1, 4);
        assert!(rows.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn as_table_shares() {
        let rows = top_autonomous_systems(&build(), 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].asn, 3320);
        assert!((rows[0].global_share - 0.4).abs() < 1e-12);
        assert!((rows[0].national_share - 1.0).abs() < 1e-12);
        assert_eq!(rows[1].asn, 3215);
        assert!((rows[1].national_share - 0.75).abs() < 1e-12);
        let combined = top_as_combined_share(&build(), 2);
        assert!((combined - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let trace = Trace::new();
        assert!(clients_per_country(&trace).is_empty());
        assert!(top_autonomous_systems(&trace, 5).is_empty());
        assert_eq!(top_as_combined_share(&trace, 5), 0.0);
    }
}
