//! Figs. 11/12: geographic clustering of a file's sources.
//!
//! For each file the paper defines the *home country* (resp. *home AS*)
//! as the one hosting the most sources, and plots the CDF of the
//! fraction of sources in the home location, split by *average
//! popularity* bands (1, 5, 10, 20, 50, 100).

use std::collections::HashMap;

use edonkey_trace::model::Trace;

use crate::stats::Cdf;
use crate::view::{file_spans, holders};

/// How to locate a peer: by country or by autonomous system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Group sources by country (Fig. 11).
    Country,
    /// Group sources by AS (Fig. 12).
    AutonomousSystem,
}

/// Per-file home-location concentration.
#[derive(Clone, Debug)]
pub struct HomeConcentration {
    /// Fraction (in percent, 0–100) of the file's sources in its home
    /// location; `None` for files with no sources.
    pub percent_at_home: Vec<Option<f64>>,
}

/// Computes, for every file, the share of its sources located in its
/// home country/AS (static trace view).
pub fn home_concentration(trace: &Trace, level: Level) -> HomeConcentration {
    let caches = trace.static_caches();
    let holders = holders(&caches, trace.files.len());
    let locate = |peer: u32| -> u64 {
        let info = &trace.peers[peer as usize];
        match level {
            Level::Country => u64::from(u16::from_be_bytes(info.country.0)),
            Level::AutonomousSystem => u64::from(info.asn),
        }
    };
    let percent_at_home = holders
        .iter()
        .map(|sources| {
            if sources.is_empty() {
                return None;
            }
            let mut counts: HashMap<u64, u32> = HashMap::new();
            for &p in sources {
                *counts.entry(locate(p)).or_insert(0) += 1;
            }
            let max = counts.values().max().copied().unwrap_or(0);
            Some(100.0 * max as f64 / sources.len() as f64)
        })
        .collect();
    HomeConcentration { percent_at_home }
}

/// Figs. 11/12: CDFs of home concentration, one per average-popularity
/// threshold.
///
/// Returns `(threshold, Cdf over percent-at-home)` for files whose
/// average popularity (distinct sources / days seen) is ≥ the threshold.
pub fn concentration_cdfs(trace: &Trace, level: Level, thresholds: &[f64]) -> Vec<(f64, Cdf)> {
    let conc = home_concentration(trace, level);
    let spans = file_spans(trace);
    thresholds
        .iter()
        .map(|&t| {
            let samples: Vec<f64> = conc
                .percent_at_home
                .iter()
                .zip(&spans)
                .filter_map(|(pct, span)| match pct {
                    Some(p) if span.average_popularity() >= t => Some(*p),
                    _ => None,
                })
                .collect();
            (t, Cdf::from_samples(samples))
        })
        .collect()
}

/// Headline number of Fig. 11: the fraction of files (within a
/// popularity band) whose sources are *all* in one location.
pub fn fully_clustered_fraction(trace: &Trace, level: Level, min_avg_popularity: f64) -> f64 {
    let conc = home_concentration(trace, level);
    let spans = file_spans(trace);
    let mut total = 0usize;
    let mut full = 0usize;
    for (pct, span) in conc.percent_at_home.iter().zip(&spans) {
        if let Some(p) = pct {
            if span.average_popularity() >= min_avg_popularity {
                total += 1;
                if *p >= 100.0 - 1e-9 {
                    full += 1;
                }
            }
        }
    }
    if total == 0 {
        return 0.0;
    }
    full as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::md4::Md4;
    use edonkey_proto::query::FileKind;
    use edonkey_trace::model::{CountryCode, FileInfo, PeerInfo, TraceBuilder};

    /// f0: 3 FR sources + 1 DE source (75 % home). f1: 2 DE sources
    /// (100 % home). FR peers sit in two different ASes.
    fn build() -> Trace {
        let mut b = TraceBuilder::new();
        let mk = |b: &mut TraceBuilder, i: u8, cc: &str, asn: u32| {
            b.intern_peer(PeerInfo {
                uid: Md4::digest(&[i]),
                ip: i as u32,
                country: CountryCode::new(cc),
                asn,
            })
        };
        let fr1 = mk(&mut b, 0, "FR", 3215);
        let fr2 = mk(&mut b, 1, "FR", 3215);
        let fr3 = mk(&mut b, 2, "FR", 12322);
        let de1 = mk(&mut b, 3, "DE", 3320);
        let de2 = mk(&mut b, 4, "DE", 3320);
        let f0 = b.intern_file(FileInfo {
            id: Md4::digest(b"f0"),
            size: 1,
            kind: FileKind::Audio,
        });
        let f1 = b.intern_file(FileInfo {
            id: Md4::digest(b"f1"),
            size: 1,
            kind: FileKind::Audio,
        });
        b.observe(1, fr1, vec![f0]);
        b.observe(1, fr2, vec![f0]);
        b.observe(1, fr3, vec![f0]);
        b.observe(1, de1, vec![f0, f1]);
        b.observe(1, de2, vec![f1]);
        b.finish()
    }

    #[test]
    fn country_concentration() {
        let conc = home_concentration(&build(), Level::Country);
        assert!((conc.percent_at_home[0].unwrap() - 75.0).abs() < 1e-9);
        assert!((conc.percent_at_home[1].unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn as_concentration_is_finer() {
        let conc = home_concentration(&build(), Level::AutonomousSystem);
        // f0 sources: 2×AS3215, 1×AS12322, 1×AS3320 → home AS share 50 %.
        assert!((conc.percent_at_home[0].unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn cdfs_by_popularity_band() {
        let trace = build();
        let cdfs = concentration_cdfs(&trace, Level::Country, &[1.0, 3.0]);
        assert_eq!(cdfs[0].1.len(), 2, "both files qualify at threshold 1");
        assert_eq!(
            cdfs[1].1.len(),
            1,
            "only f0 (4 sources / 1 day) at threshold 3"
        );
        // CDF of the ≥3 band: the single file is at 75 %.
        assert_eq!(cdfs[1].1.fraction_at_most(74.0), 0.0);
        assert_eq!(cdfs[1].1.fraction_at_most(75.0), 1.0);
    }

    #[test]
    fn fully_clustered() {
        let trace = build();
        let frac = fully_clustered_fraction(&trace, Level::Country, 1.0);
        assert!((frac - 0.5).abs() < 1e-12, "one of two files is 100% home");
        assert_eq!(
            fully_clustered_fraction(&Trace::new(), Level::Country, 1.0),
            0.0
        );
    }

    #[test]
    fn never_shared_files_are_excluded() {
        let mut b = TraceBuilder::new();
        let p = b.intern_peer(PeerInfo {
            uid: Md4::digest(b"p"),
            ip: 1,
            country: CountryCode::new("FR"),
            asn: 1,
        });
        let _ghost = b.intern_file(FileInfo {
            id: Md4::digest(b"ghost"),
            size: 1,
            kind: FileKind::Audio,
        });
        b.observe(1, p, vec![]);
        let trace = b.finish();
        let conc = home_concentration(&trace, Level::Country);
        assert_eq!(conc.percent_at_home[0], None);
        let cdfs = concentration_cdfs(&trace, Level::Country, &[1.0]);
        assert!(cdfs[0].1.is_empty());
    }
}
