//! Figs. 13/14: the semantic clustering correlation.
//!
//! The paper's metric: *"the probability that any two clients having at
//! least a given number of files in common share another one"* — i.e.
//! for each `k`, among peer pairs with at least `k` common files, the
//! fraction that have at least `k + 1`. It predicts whether a peer that
//! answered `k` queries will answer another, which is exactly why
//! semantic neighbour lists work.
//!
//! Pair overlaps are computed with an inverted index: each file
//! contributes `(holders choose 2)` co-occurrence increments. To keep
//! the quadratic blow-up of very popular files in check, files held by
//! more than a configurable number of peers can be skipped — mirroring
//! the paper's own need to study the metric *without* popular files
//! (their Fig. 14 "all files" panel shows popular files mask genuine
//! clustering anyway).

use std::collections::HashMap;

use edonkey_trace::model::FileRef;

/// Pairwise overlap counts between peers.
///
/// Only pairs with at least one qualifying common file are stored.
pub struct OverlapCounts {
    counts: HashMap<(u32, u32), u32>,
}

impl OverlapCounts {
    /// Number of pairs with at least one common file.
    pub fn pair_count(&self) -> usize {
        self.counts.len()
    }

    /// Iterates over `(pair, overlap)` entries.
    pub fn iter(&self) -> impl Iterator<Item = ((u32, u32), u32)> + '_ {
        self.counts.iter().map(|(&pair, &c)| (pair, c))
    }

    /// The overlap of a specific pair (unordered).
    pub fn overlap(&self, a: u32, b: u32) -> u32 {
        let key = if a < b { (a, b) } else { (b, a) };
        self.counts.get(&key).copied().unwrap_or(0)
    }
}

/// Computes pairwise overlap counts from caches, counting only files
/// accepted by `qualifies` and skipping files with more than
/// `max_holders` holders (`None` = no cap).
///
/// `qualifies(file) -> bool` lets Fig. 13 restrict to audio files in a
/// popularity band and Fig. 14 to fixed popularity levels.
pub fn overlap_counts(
    caches: &[Vec<FileRef>],
    n_files: usize,
    qualifies: impl Fn(FileRef) -> bool,
    max_holders: Option<usize>,
) -> OverlapCounts {
    let mut holders: Vec<Vec<u32>> = vec![Vec::new(); n_files];
    for (peer, cache) in caches.iter().enumerate() {
        for &f in cache {
            if qualifies(f) {
                holders[f.index()].push(peer as u32);
            }
        }
    }
    let cap = max_holders.unwrap_or(usize::MAX);
    let mut counts: HashMap<(u32, u32), u32> = HashMap::new();
    for hs in &holders {
        if hs.len() < 2 || hs.len() > cap {
            continue;
        }
        for i in 0..hs.len() {
            for j in i + 1..hs.len() {
                *counts.entry((hs[i], hs[j])).or_insert(0) += 1;
            }
        }
    }
    OverlapCounts { counts }
}

/// One point of the Fig. 13 curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorrelationPoint {
    /// Number of files in common `k`.
    pub common: u32,
    /// Probability (percent) that such a pair shares at least one more.
    pub probability_percent: f64,
    /// Number of pairs with at least `k` common files (the support).
    pub pairs: usize,
}

/// The clustering correlation curve: for each `k ≥ 1` present in the
/// data, `P(overlap ≥ k+1 | overlap ≥ k)`.
pub fn correlation_curve(overlaps: &OverlapCounts) -> Vec<CorrelationPoint> {
    // pairs_with_at_least[k] via a histogram + suffix sum.
    let mut histogram: HashMap<u32, usize> = HashMap::new();
    let mut max_overlap = 0u32;
    for (_, c) in overlaps.iter() {
        *histogram.entry(c).or_insert(0) += 1;
        max_overlap = max_overlap.max(c);
    }
    if max_overlap == 0 {
        return Vec::new();
    }
    let mut at_least = vec![0usize; max_overlap as usize + 2];
    for (&overlap, &n) in &histogram {
        at_least[overlap as usize] += n;
    }
    for k in (1..=max_overlap as usize).rev() {
        at_least[k] += at_least[k + 1];
    }
    (1..=max_overlap)
        .filter(|&k| at_least[k as usize] > 0)
        .map(|k| CorrelationPoint {
            common: k,
            probability_percent: 100.0 * at_least[k as usize + 1] as f64
                / at_least[k as usize] as f64,
            pairs: at_least[k as usize],
        })
        .collect()
}

/// Convenience: the full Fig. 13 pipeline over a cache set.
pub fn clustering_correlation(
    caches: &[Vec<FileRef>],
    n_files: usize,
    qualifies: impl Fn(FileRef) -> bool,
    max_holders: Option<usize>,
) -> Vec<CorrelationPoint> {
    correlation_curve(&overlap_counts(caches, n_files, qualifies, max_holders))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileRef {
        FileRef(i)
    }

    #[test]
    fn overlap_counting() {
        let caches = vec![
            vec![f(0), f(1), f(2)],
            vec![f(0), f(1), f(3)],
            vec![f(2)],
            vec![],
        ];
        let overlaps = overlap_counts(&caches, 4, |_| true, None);
        assert_eq!(overlaps.overlap(0, 1), 2);
        assert_eq!(overlaps.overlap(1, 0), 2, "order-insensitive");
        assert_eq!(overlaps.overlap(0, 2), 1);
        assert_eq!(overlaps.overlap(1, 2), 0);
        assert_eq!(overlaps.pair_count(), 2);
    }

    #[test]
    fn qualifying_filter_restricts_files() {
        let caches = vec![vec![f(0), f(1)], vec![f(0), f(1)]];
        let only_f1 = overlap_counts(&caches, 2, |fr| fr.0 == 1, None);
        assert_eq!(only_f1.overlap(0, 1), 1);
    }

    #[test]
    fn holder_cap_skips_blockbusters() {
        let caches = vec![vec![f(0)], vec![f(0)], vec![f(0)], vec![f(0)]];
        let capped = overlap_counts(&caches, 1, |_| true, Some(3));
        assert_eq!(capped.pair_count(), 0, "file with 4 holders skipped at cap 3");
        let uncapped = overlap_counts(&caches, 1, |_| true, None);
        assert_eq!(uncapped.pair_count(), 6);
    }

    #[test]
    fn correlation_curve_values() {
        // Three pairs with overlaps 1, 2, 3:
        // P(≥2 | ≥1) = 2/3, P(≥3 | ≥2) = 1/2, P(≥4 | ≥3) = 0.
        let caches = vec![
            vec![f(0)],
            vec![f(0)],                   // pair (0,1): overlap 1
            vec![f(1), f(2)],
            vec![f(1), f(2)],             // pair (2,3): overlap 2
            vec![f(3), f(4), f(5)],
            vec![f(3), f(4), f(5)],       // pair (4,5): overlap 3
        ];
        let curve = clustering_correlation(&caches, 6, |_| true, None);
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].common, 1);
        assert_eq!(curve[0].pairs, 3);
        assert!((curve[0].probability_percent - 200.0 / 3.0).abs() < 1e-9);
        assert!((curve[1].probability_percent - 50.0).abs() < 1e-9);
        assert_eq!(curve[2].probability_percent, 0.0);
    }

    #[test]
    fn empty_inputs() {
        let curve = clustering_correlation(&[], 0, |_| true, None);
        assert!(curve.is_empty());
        let caches = vec![vec![f(0)], vec![f(1)]];
        let curve = clustering_correlation(&caches, 2, |_| true, None);
        assert!(curve.is_empty(), "no pair shares anything");
    }
}
