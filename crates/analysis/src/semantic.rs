//! Figs. 13/14: the semantic clustering correlation.
//!
//! The paper's metric: *"the probability that any two clients having at
//! least a given number of files in common share another one"* — i.e.
//! for each `k`, among peer pairs with at least `k` common files, the
//! fraction that have at least `k + 1`. It predicts whether a peer that
//! answered `k` queries will answer another, which is exactly why
//! semantic neighbour lists work.
//!
//! Pair overlaps are computed with an inverted index: each file
//! contributes `(holders choose 2)` co-occurrence increments. To keep
//! the quadratic blow-up of very popular files in check, files held by
//! more than a configurable number of peers can be skipped — mirroring
//! the paper's own need to study the metric *without* popular files
//! (their Fig. 14 "all files" panel shows popular files mask genuine
//! clustering anyway).

use std::collections::HashMap;

use edonkey_trace::compact::CacheArena;
use edonkey_trace::model::FileRef;

/// Pairwise overlap counts between peers.
///
/// Only pairs with at least one qualifying common file are stored.
/// Backed by a `(pair, count)` vector sorted by pair — columnar like
/// the arena it is usually computed from; point queries are binary
/// searches and iteration is a linear scan in deterministic order.
pub struct OverlapCounts {
    /// `((a, b), overlap)` with `a < b`, sorted ascending by pair.
    entries: Vec<((u32, u32), u32)>,
}

impl OverlapCounts {
    /// Wraps a pre-sorted `((a, b), overlap)` entry list (the banded
    /// engine emits in the same order as the engines here).
    pub(crate) fn from_entries(entries: Vec<((u32, u32), u32)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "pair-sorted");
        OverlapCounts { entries }
    }

    /// Number of pairs with at least one common file.
    pub fn pair_count(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over `(pair, overlap)` entries in ascending pair order.
    pub fn iter(&self) -> impl Iterator<Item = ((u32, u32), u32)> + '_ {
        self.entries.iter().copied()
    }

    /// The overlap of a specific pair (unordered).
    pub fn overlap(&self, a: u32, b: u32) -> u32 {
        let key = if a < b { (a, b) } else { (b, a) };
        self.entries
            .binary_search_by_key(&key, |&(pair, _)| pair)
            .map(|i| self.entries[i].1)
            .unwrap_or(0)
    }
}

/// Computes pairwise overlap counts from caches, counting only files
/// accepted by `qualifies` and skipping files with more than
/// `max_holders` holders (`None` = no cap).
///
/// `qualifies(file) -> bool` lets Fig. 13 restrict to audio files in a
/// popularity band and Fig. 14 to fixed popularity levels.
pub fn overlap_counts(
    caches: &[Vec<FileRef>],
    n_files: usize,
    qualifies: impl Fn(FileRef) -> bool,
    max_holders: Option<usize>,
) -> OverlapCounts {
    overlap_counts_with_scratch(
        caches,
        n_files,
        qualifies,
        max_holders,
        &mut OverlapScratch::default(),
    )
}

/// Reusable buffers for the sequential overlap oracle: the flat CSR
/// inverted index (replacing one heap `Vec` per shared file) and the
/// dense per-row accumulator (replacing the per-pair hash map). A
/// scratch carried across oracle runs makes repeated seed comparisons
/// allocation-free apart from the output itself — the same
/// caller-owned pattern as `sorted_intersection_into`.
#[derive(Debug, Default)]
pub struct OverlapScratch {
    /// CSR row offsets per file (`n_files + 1`).
    heads: Vec<u32>,
    /// Concatenated holder lists, each ascending by peer id.
    flat: Vec<u32>,
    /// `acc[b]` = row `a`'s running overlap with peer `b`.
    acc: Vec<u32>,
    /// The `b` slots touched by the current row.
    touched: Vec<u32>,
}

/// [`overlap_counts`] with caller-owned scratch. Identical output; the
/// algorithm is the arena engine's row fold run sequentially, so the
/// entry list comes out pair-sorted without a final sort.
pub fn overlap_counts_with_scratch(
    caches: &[Vec<FileRef>],
    n_files: usize,
    qualifies: impl Fn(FileRef) -> bool,
    max_holders: Option<usize>,
    scratch: &mut OverlapScratch,
) -> OverlapCounts {
    let cap = max_holders.unwrap_or(usize::MAX);
    let OverlapScratch {
        heads,
        flat,
        acc,
        touched,
    } = scratch;

    // Flat CSR inverted index: bucket-count, prefix-sum, fill. Peers
    // are walked in ascending order, so every holder row is sorted.
    heads.clear();
    heads.resize(n_files + 1, 0);
    let mut qualifying = 0usize;
    for cache in caches {
        for &f in cache {
            if qualifies(f) {
                heads[f.index() + 1] += 1;
                qualifying += 1;
            }
        }
    }
    for i in 0..n_files {
        heads[i + 1] += heads[i];
    }
    flat.clear();
    flat.resize(qualifying, 0);
    let mut cursor: Vec<u32> = heads[..n_files].to_vec();
    for (peer, cache) in caches.iter().enumerate() {
        for &f in cache {
            if qualifies(f) {
                let c = &mut cursor[f.index()];
                flat[*c as usize] = peer as u32;
                *c += 1;
            }
        }
    }

    // Row-major dense accumulation — the same fold the arena engine
    // runs per worker, here over every row in order.
    acc.clear();
    acc.resize(caches.len(), 0);
    touched.clear();
    let mut entries: Vec<((u32, u32), u32)> = Vec::new();
    for (a, cache) in caches.iter().enumerate() {
        for &f in cache {
            if !qualifies(f) {
                continue;
            }
            let hs = &flat[heads[f.index()] as usize..heads[f.index() + 1] as usize];
            if hs.len() < 2 || hs.len() > cap {
                continue;
            }
            let from = hs.partition_point(|&b| b <= a as u32);
            for &b in &hs[from..] {
                if acc[b as usize] == 0 {
                    touched.push(b);
                }
                acc[b as usize] += 1;
            }
        }
        touched.sort_unstable();
        entries.extend(touched.iter().map(|&b| ((a as u32, b), acc[b as usize])));
        for &b in touched.iter() {
            acc[b as usize] = 0;
        }
        touched.clear();
    }
    OverlapCounts { entries }
}

/// Arena-backed, parallel [`overlap_counts`] using all available cores.
///
/// Produces exactly the same counts as the sequential path for any
/// thread count, and is several times faster even on one core: instead
/// of hashing every pair increment, peers (rows) are sharded across
/// workers and each worker folds its rows through a dense sparse
/// accumulator — `acc[b]` counts row `a`'s overlap with peer `b`, a
/// touched-list remembers which slots to harvest and reset. Row shards
/// are disjoint, so the merge is a deterministic concatenation in row
/// order; no summation across workers is ever needed.
pub fn overlap_counts_arena(
    arena: &CacheArena,
    qualifies: impl Fn(FileRef) -> bool + Sync,
    max_holders: Option<usize>,
) -> OverlapCounts {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    overlap_counts_arena_with_threads(arena, qualifies, max_holders, threads)
}

/// A worker's output for one claimed row chunk: the chunk's first row
/// plus its `((a, b), overlap)` entries, emitted pair-sorted.
type Segment = (usize, Vec<((u32, u32), u32)>);

/// [`overlap_counts_arena`] with an explicit worker count (1 runs on
/// the calling thread). Exposed so equivalence tests can pin 1, 2 and 8
/// workers against the sequential path.
pub fn overlap_counts_arena_with_threads(
    arena: &CacheArena,
    qualifies: impl Fn(FileRef) -> bool + Sync,
    max_holders: Option<usize>,
    threads: usize,
) -> OverlapCounts {
    let n_files = arena.n_files();
    let n_peers = arena.n_peers();
    let cap = max_holders.unwrap_or(usize::MAX);
    if n_files == 0 || n_peers < 2 {
        return OverlapCounts {
            entries: Vec::new(),
        };
    }
    // Build the inverted index once, before the fan-out.
    arena.ensure_holders();

    let threads = threads.max(1).min(n_peers);
    let qualifies = &qualifies;
    // Chunked dynamic sharding: per-row cost is skewed (a generous peer
    // with popular files scans long holder lists), so workers claim
    // modest row chunks off a shared cursor rather than fixed stripes.
    let chunk = (n_peers / (threads * 16)).max(8);
    let cursor = std::sync::atomic::AtomicUsize::new(0);

    // Each worker returns `(chunk_start, entries)` segments; rows
    // within a segment are emitted in order with columns sorted, so
    // sorting segments by start and concatenating yields the globally
    // pair-sorted entry list — identical for any thread count.
    let run_worker = || {
        let mut acc: Vec<u32> = vec![0; n_peers];
        let mut touched: Vec<u32> = Vec::new();
        let mut segments: Vec<Segment> = Vec::new();
        loop {
            let start = cursor.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
            if start >= n_peers {
                break;
            }
            let mut out: Vec<((u32, u32), u32)> = Vec::new();
            for a in start..(start + chunk).min(n_peers) {
                for &f in arena.cache(a) {
                    if !qualifies(f) {
                        continue;
                    }
                    let hs = arena.holders(f);
                    if hs.len() < 2 || hs.len() > cap {
                        continue;
                    }
                    // Holder lists are sorted; count only partners
                    // after `a` (each unordered pair once, no self).
                    let from = hs.partition_point(|&b| b <= a as u32);
                    for &b in &hs[from..] {
                        if acc[b as usize] == 0 {
                            touched.push(b);
                        }
                        acc[b as usize] += 1;
                    }
                }
                touched.sort_unstable();
                out.extend(touched.iter().map(|&b| ((a as u32, b), acc[b as usize])));
                for &b in &touched {
                    acc[b as usize] = 0;
                }
                touched.clear();
            }
            segments.push((start, out));
        }
        segments
    };

    let mut segments: Vec<Segment> = if threads == 1 {
        run_worker()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads).map(|_| scope.spawn(run_worker)).collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("overlap worker panicked"))
                .collect()
        })
    };
    segments.sort_unstable_by_key(|&(start, _)| start);
    let total = segments.iter().map(|(_, s)| s.len()).sum();
    let mut entries = Vec::with_capacity(total);
    for (_, segment) in segments {
        entries.extend(segment);
    }
    OverlapCounts { entries }
}

/// One point of the Fig. 13 curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorrelationPoint {
    /// Number of files in common `k`.
    pub common: u32,
    /// Probability (percent) that such a pair shares at least one more.
    pub probability_percent: f64,
    /// Number of pairs with at least `k` common files (the support).
    pub pairs: usize,
}

/// The clustering correlation curve: for each `k ≥ 1` present in the
/// data, `P(overlap ≥ k+1 | overlap ≥ k)`.
pub fn correlation_curve(overlaps: &OverlapCounts) -> Vec<CorrelationPoint> {
    // pairs_with_at_least[k] via a histogram + suffix sum.
    let mut histogram: HashMap<u32, usize> = HashMap::new();
    let mut max_overlap = 0u32;
    for (_, c) in overlaps.iter() {
        *histogram.entry(c).or_insert(0) += 1;
        max_overlap = max_overlap.max(c);
    }
    if max_overlap == 0 {
        return Vec::new();
    }
    let mut at_least = vec![0usize; max_overlap as usize + 2];
    for (&overlap, &n) in &histogram {
        at_least[overlap as usize] += n;
    }
    for k in (1..=max_overlap as usize).rev() {
        at_least[k] += at_least[k + 1];
    }
    (1..=max_overlap)
        .filter(|&k| at_least[k as usize] > 0)
        .map(|k| CorrelationPoint {
            common: k,
            probability_percent: 100.0 * at_least[k as usize + 1] as f64
                / at_least[k as usize] as f64,
            pairs: at_least[k as usize],
        })
        .collect()
}

/// Convenience: the full Fig. 13 pipeline over a cache set.
///
/// Thin adapter over the arena path: packs the caches into a
/// [`CacheArena`] and runs the parallel overlap engine. Output is
/// identical to the sequential [`overlap_counts`] pipeline.
pub fn clustering_correlation(
    caches: &[Vec<FileRef>],
    n_files: usize,
    qualifies: impl Fn(FileRef) -> bool + Sync,
    max_holders: Option<usize>,
) -> Vec<CorrelationPoint> {
    let arena = CacheArena::from_caches(caches, n_files);
    clustering_correlation_arena(&arena, qualifies, max_holders)
}

/// The full Fig. 13 pipeline over an existing arena (no repacking).
pub fn clustering_correlation_arena(
    arena: &CacheArena,
    qualifies: impl Fn(FileRef) -> bool + Sync,
    max_holders: Option<usize>,
) -> Vec<CorrelationPoint> {
    correlation_curve(&overlap_counts_arena(arena, qualifies, max_holders))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileRef {
        FileRef(i)
    }

    #[test]
    fn overlap_counting() {
        let caches = vec![
            vec![f(0), f(1), f(2)],
            vec![f(0), f(1), f(3)],
            vec![f(2)],
            vec![],
        ];
        let overlaps = overlap_counts(&caches, 4, |_| true, None);
        assert_eq!(overlaps.overlap(0, 1), 2);
        assert_eq!(overlaps.overlap(1, 0), 2, "order-insensitive");
        assert_eq!(overlaps.overlap(0, 2), 1);
        assert_eq!(overlaps.overlap(1, 2), 0);
        assert_eq!(overlaps.pair_count(), 2);
    }

    #[test]
    fn qualifying_filter_restricts_files() {
        let caches = vec![vec![f(0), f(1)], vec![f(0), f(1)]];
        let only_f1 = overlap_counts(&caches, 2, |fr| fr.0 == 1, None);
        assert_eq!(only_f1.overlap(0, 1), 1);
    }

    #[test]
    fn holder_cap_skips_blockbusters() {
        let caches = vec![vec![f(0)], vec![f(0)], vec![f(0)], vec![f(0)]];
        let capped = overlap_counts(&caches, 1, |_| true, Some(3));
        assert_eq!(
            capped.pair_count(),
            0,
            "file with 4 holders skipped at cap 3"
        );
        let uncapped = overlap_counts(&caches, 1, |_| true, None);
        assert_eq!(uncapped.pair_count(), 6);
    }

    #[test]
    fn correlation_curve_values() {
        // Three pairs with overlaps 1, 2, 3:
        // P(≥2 | ≥1) = 2/3, P(≥3 | ≥2) = 1/2, P(≥4 | ≥3) = 0.
        let caches = vec![
            vec![f(0)],
            vec![f(0)], // pair (0,1): overlap 1
            vec![f(1), f(2)],
            vec![f(1), f(2)], // pair (2,3): overlap 2
            vec![f(3), f(4), f(5)],
            vec![f(3), f(4), f(5)], // pair (4,5): overlap 3
        ];
        let curve = clustering_correlation(&caches, 6, |_| true, None);
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].common, 1);
        assert_eq!(curve[0].pairs, 3);
        assert!((curve[0].probability_percent - 200.0 / 3.0).abs() < 1e-9);
        assert!((curve[1].probability_percent - 50.0).abs() < 1e-9);
        assert_eq!(curve[2].probability_percent, 0.0);
    }

    #[test]
    fn empty_inputs() {
        let curve = clustering_correlation(&[], 0, |_| true, None);
        assert!(curve.is_empty());
        let caches = vec![vec![f(0)], vec![f(1)]];
        let curve = clustering_correlation(&caches, 2, |_| true, None);
        assert!(curve.is_empty(), "no pair shares anything");
    }

    /// Deterministic pseudo-random cache set (no RNG dependency here).
    fn scrambled_caches(n_peers: usize, n_files: usize) -> Vec<Vec<FileRef>> {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut step = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n_peers)
            .map(|_| {
                let len = (step() % 20) as usize;
                let mut cache: Vec<FileRef> = (0..len)
                    .map(|_| f((step() % n_files as u64) as u32))
                    .collect();
                // The model invariant both paths assume: sorted, deduped.
                cache.sort_unstable();
                cache.dedup();
                cache
            })
            .collect()
    }

    #[test]
    fn arena_path_matches_sequential_for_any_thread_count() {
        let caches = scrambled_caches(60, 40);
        for max_holders in [None, Some(6)] {
            for qualifies in [|_: FileRef| true, |fr: FileRef| !fr.0.is_multiple_of(3)] {
                let seq = overlap_counts(&caches, 40, qualifies, max_holders);
                let arena = CacheArena::from_caches(&caches, 40);
                for threads in [1, 2, 8] {
                    let par =
                        overlap_counts_arena_with_threads(&arena, qualifies, max_holders, threads);
                    let mut a: Vec<_> = seq.iter().collect();
                    let mut b: Vec<_> = par.iter().collect();
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "threads={threads} max_holders={max_holders:?}");
                }
            }
        }
    }

    #[test]
    fn arena_engine_matches_on_large_sparse_population() {
        // Many empty rows interleaved with the populated ones: chunked
        // row sharding must still emit every populated row exactly once
        // and in order.
        let mut caches = scrambled_caches(50, 30);
        caches.resize(1 << 11, Vec::new());
        let seq = overlap_counts(&caches, 30, |_| true, None);
        let arena = CacheArena::from_caches(&caches, 30);
        let par = overlap_counts_arena_with_threads(&arena, |_| true, None, 4);
        let mut a: Vec<_> = seq.iter().collect();
        let mut b: Vec<_> = par.iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn overlap_counts_iterates_in_ascending_pair_order() {
        let caches = scrambled_caches(60, 24);
        let arena = CacheArena::from_caches(&caches, 24);
        let pairs: Vec<(u32, u32)> = overlap_counts_arena(&arena, |_| true, None)
            .iter()
            .map(|(pair, _)| pair)
            .collect();
        assert!(!pairs.is_empty());
        assert!(
            pairs.windows(2).all(|w| w[0] < w[1]),
            "sorted, no duplicates"
        );
    }
}
