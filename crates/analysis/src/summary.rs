//! Table 1: general trace characteristics, for each pipeline stage.

use edonkey_trace::model::Trace;

/// One stage's row set in Table 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// Duration in days (first to last snapshot, inclusive).
    pub duration_days: u32,
    /// Distinct clients.
    pub clients: usize,
    /// Clients that never shared a file.
    pub free_riders: usize,
    /// Successful `(client, day)` snapshots.
    pub snapshots: usize,
    /// Distinct files.
    pub distinct_files: usize,
    /// Total bytes over distinct files.
    pub distinct_bytes: u64,
    /// Distinct files actually observed shared at least once (the intern
    /// table may include files that only other stages reference).
    pub observed_files: usize,
}

impl TraceSummary {
    /// Free-rider fraction in `[0,1]`.
    pub fn free_rider_fraction(&self) -> f64 {
        if self.clients == 0 {
            return 0.0;
        }
        self.free_riders as f64 / self.clients as f64
    }
}

/// Computes a stage's Table 1 rows.
pub fn summarize(trace: &Trace) -> TraceSummary {
    let caches = trace.static_caches();
    let free_riders = caches.iter().filter(|c| c.is_empty()).count();
    let mut observed = vec![false; trace.files.len()];
    let mut observed_files = 0usize;
    let mut observed_bytes = 0u64;
    for cache in &caches {
        for f in cache {
            if !observed[f.index()] {
                observed[f.index()] = true;
                observed_files += 1;
                observed_bytes += trace.files[f.index()].size;
            }
        }
    }
    TraceSummary {
        duration_days: trace.duration_days(),
        clients: trace.peers.len(),
        free_riders,
        snapshots: trace.snapshot_count(),
        distinct_files: observed_files,
        distinct_bytes: observed_bytes,
        observed_files,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::md4::Md4;
    use edonkey_proto::query::FileKind;
    use edonkey_trace::model::{CountryCode, FileInfo, PeerInfo, TraceBuilder};

    #[test]
    fn summary_counts() {
        let mut b = TraceBuilder::new();
        let p0 = b.intern_peer(PeerInfo {
            uid: Md4::digest(b"a"),
            ip: 1,
            country: CountryCode::new("FR"),
            asn: 1,
        });
        let p1 = b.intern_peer(PeerInfo {
            uid: Md4::digest(b"b"),
            ip: 2,
            country: CountryCode::new("FR"),
            asn: 1,
        });
        let f0 = b.intern_file(FileInfo {
            id: Md4::digest(b"f0"),
            size: 100,
            kind: FileKind::Audio,
        });
        // An interned-but-never-shared file must not count as observed.
        let _unshared = b.intern_file(FileInfo {
            id: Md4::digest(b"f1"),
            size: 999,
            kind: FileKind::Video,
        });
        b.observe(5, p0, vec![f0]);
        b.observe(7, p0, vec![f0]);
        b.observe(7, p1, vec![]);
        let trace = b.finish();
        let s = summarize(&trace);
        assert_eq!(s.duration_days, 3);
        assert_eq!(s.clients, 2);
        assert_eq!(s.free_riders, 1);
        assert_eq!(s.snapshots, 3);
        assert_eq!(s.distinct_files, 1);
        assert_eq!(s.distinct_bytes, 100);
        assert!((s.free_rider_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_summary() {
        let s = summarize(&Trace::new());
        assert_eq!(s.clients, 0);
        assert_eq!(s.free_rider_fraction(), 0.0);
    }
}
