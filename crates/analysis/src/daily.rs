//! Per-day series: Figs. 1, 2 and 3.

use edonkey_trace::model::Trace;

/// One row of Fig. 1: clients successfully scanned and distinct files
/// seen on a day.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DailyCount {
    /// Absolute day.
    pub day: u32,
    /// Clients browsed that day.
    pub clients: usize,
    /// Distinct files observed that day.
    pub files: usize,
}

/// Fig. 1: evolution of clients and files scanned per day.
pub fn clients_and_files_per_day(trace: &Trace) -> Vec<DailyCount> {
    trace
        .days
        .iter()
        .map(|snap| DailyCount {
            day: snap.day,
            clients: snap.peer_count(),
            files: snap.distinct_files(),
        })
        .collect()
}

/// One row of Fig. 2: files first seen this day, and the running total.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiscoveryCount {
    /// Absolute day.
    pub day: u32,
    /// Files never seen on any earlier day.
    pub new_files: usize,
    /// Cumulative distinct files discovered so far.
    pub total_files: usize,
}

/// Fig. 2: evolution of newly discovered and cumulative files.
pub fn file_discovery_per_day(trace: &Trace) -> Vec<DiscoveryCount> {
    let mut seen = vec![false; trace.files.len()];
    let mut total = 0usize;
    trace
        .days
        .iter()
        .map(|snap| {
            let mut new_files = 0usize;
            for (_, cache) in &snap.caches {
                for f in cache {
                    if !seen[f.index()] {
                        seen[f.index()] = true;
                        new_files += 1;
                    }
                }
            }
            total += new_files;
            DiscoveryCount {
                day: snap.day,
                new_files,
                total_files: total,
            }
        })
        .collect()
}

/// One row of Fig. 3: files per day and non-empty caches per day (the
/// extrapolated-trace coverage check).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoverageCount {
    /// Absolute day.
    pub day: u32,
    /// Total file replicas available that day.
    pub files: usize,
    /// Peers with at least one shared file that day.
    pub non_empty_caches: usize,
}

/// Fig. 3: per-day files and non-empty caches (run on the extrapolated
/// trace to pick the analysis window).
pub fn coverage_per_day(trace: &Trace) -> Vec<CoverageCount> {
    trace
        .days
        .iter()
        .map(|snap| CoverageCount {
            day: snap.day,
            files: snap.replica_count(),
            non_empty_caches: snap.non_empty_count(),
        })
        .collect()
}

/// Mean new files per client per day — the paper's "clients share 5 new
/// files per day" observation, derived from Figs. 1 and 2.
pub fn new_files_per_client(trace: &Trace) -> f64 {
    let discovery = file_discovery_per_day(trace);
    let clients = clients_and_files_per_day(trace);
    // Skip day one: everything is "new" on the first crawl day.
    let new_total: usize = discovery.iter().skip(1).map(|d| d.new_files).sum();
    let client_days: usize = clients.iter().skip(1).map(|d| d.clients).sum();
    if client_days == 0 {
        return 0.0;
    }
    new_total as f64 / client_days as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::md4::Md4;
    use edonkey_proto::query::FileKind;
    use edonkey_trace::model::{CountryCode, FileInfo, PeerInfo, TraceBuilder};

    fn build() -> Trace {
        let mut b = TraceBuilder::new();
        let p: Vec<_> = (0..3)
            .map(|i| {
                b.intern_peer(PeerInfo {
                    uid: Md4::digest(&[i]),
                    ip: i as u32,
                    country: CountryCode::new("DE"),
                    asn: 3320,
                })
            })
            .collect();
        let f: Vec<_> = (0..4)
            .map(|i| {
                b.intern_file(FileInfo {
                    id: Md4::digest(format!("f{i}").as_bytes()),
                    size: 1,
                    kind: FileKind::Audio,
                })
            })
            .collect();
        b.observe(10, p[0], vec![f[0], f[1]]);
        b.observe(10, p[1], vec![]);
        b.observe(11, p[0], vec![f[0], f[2]]);
        b.observe(11, p[2], vec![f[3]]);
        b.finish()
    }

    #[test]
    fn fig1_counts() {
        let series = clients_and_files_per_day(&build());
        assert_eq!(
            series,
            vec![
                DailyCount {
                    day: 10,
                    clients: 2,
                    files: 2
                },
                DailyCount {
                    day: 11,
                    clients: 2,
                    files: 3
                },
            ]
        );
    }

    #[test]
    fn fig2_discovery() {
        let series = file_discovery_per_day(&build());
        assert_eq!(
            series,
            vec![
                DiscoveryCount {
                    day: 10,
                    new_files: 2,
                    total_files: 2
                },
                DiscoveryCount {
                    day: 11,
                    new_files: 2,
                    total_files: 4
                },
            ]
        );
    }

    #[test]
    fn fig3_coverage() {
        let series = coverage_per_day(&build());
        assert_eq!(
            series,
            vec![
                CoverageCount {
                    day: 10,
                    files: 2,
                    non_empty_caches: 1
                },
                CoverageCount {
                    day: 11,
                    files: 3,
                    non_empty_caches: 2
                },
            ]
        );
    }

    #[test]
    fn new_files_rate() {
        // Day 11: 2 new files over 2 clients = 1.0.
        assert!((new_files_per_client(&build()) - 1.0).abs() < 1e-12);
        assert_eq!(new_files_per_client(&Trace::new()), 0.0);
    }
}
