//! Fig. 6: cumulative distribution of file sizes by popularity level.

use edonkey_trace::model::Trace;

use crate::stats::Cdf;
use crate::view::static_popularity;

/// Size CDFs (in KB, matching the paper's axis) for files whose static
/// popularity is at least each of `thresholds`.
///
/// Returns one `(threshold, Cdf)` per requested level; files never
/// observed shared are excluded even at threshold 1.
pub fn size_cdfs_by_popularity(trace: &Trace, thresholds: &[u32]) -> Vec<(u32, Cdf)> {
    let popularity = static_popularity(trace);
    thresholds
        .iter()
        .map(|&t| {
            let samples: Vec<f64> = trace
                .files
                .iter()
                .zip(&popularity)
                .filter(|(_, &p)| p >= t.max(1))
                .map(|(f, _)| f.size as f64 / 1024.0)
                .collect();
            (t, Cdf::from_samples(samples))
        })
        .collect()
}

/// Summary fractions the paper quotes for the full catalogue: files
/// `< 1 MB`, in `[1, 10) MB`, and `>= 10 MB`.
pub fn size_mix(trace: &Trace) -> (f64, f64, f64) {
    let popularity = static_popularity(trace);
    let sizes: Vec<u64> = trace
        .files
        .iter()
        .zip(&popularity)
        .filter(|(_, &p)| p >= 1)
        .map(|(f, _)| f.size)
        .collect();
    if sizes.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let n = sizes.len() as f64;
    let mb = 1u64 << 20;
    let small = sizes.iter().filter(|&&s| s < mb).count() as f64 / n;
    let mid = sizes
        .iter()
        .filter(|&&s| (mb..10 * mb).contains(&s))
        .count() as f64
        / n;
    (small, mid, 1.0 - small - mid)
}

/// Fraction of files above `bytes`, among files with popularity ≥
/// `min_popularity` — e.g. the paper's "among files with popularity ≥ 5,
/// about 45 % are larger than 600 MB".
pub fn fraction_larger_than(trace: &Trace, min_popularity: u32, bytes: u64) -> f64 {
    let popularity = static_popularity(trace);
    let mut total = 0usize;
    let mut above = 0usize;
    for (f, &p) in trace.files.iter().zip(&popularity) {
        if p >= min_popularity.max(1) {
            total += 1;
            if f.size > bytes {
                above += 1;
            }
        }
    }
    if total == 0 {
        return 0.0;
    }
    above as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::md4::Md4;
    use edonkey_proto::query::FileKind;
    use edonkey_trace::model::{CountryCode, FileInfo, PeerInfo, TraceBuilder};

    /// Three peers; a small file shared by all, a big file by one.
    fn build() -> Trace {
        let mut b = TraceBuilder::new();
        let peers: Vec<_> = (0..3)
            .map(|i| {
                b.intern_peer(PeerInfo {
                    uid: Md4::digest(&[i]),
                    ip: i as u32,
                    country: CountryCode::new("ES"),
                    asn: 3352,
                })
            })
            .collect();
        let small = b.intern_file(FileInfo {
            id: Md4::digest(b"small"),
            size: 512 * 1024,
            kind: FileKind::Audio,
        });
        let big = b.intern_file(FileInfo {
            id: Md4::digest(b"big"),
            size: 700 << 20,
            kind: FileKind::Video,
        });
        let _never_shared = b.intern_file(FileInfo {
            id: Md4::digest(b"ghost"),
            size: 5 << 20,
            kind: FileKind::Audio,
        });
        for p in &peers {
            b.observe(1, *p, vec![small]);
        }
        b.observe(2, peers[0], vec![small, big]);
        b.finish()
    }

    #[test]
    fn cdfs_by_threshold() {
        let trace = build();
        let cdfs = size_cdfs_by_popularity(&trace, &[1, 2]);
        // Threshold 1: both shared files (ghost excluded).
        assert_eq!(cdfs[0].1.len(), 2);
        // Threshold 2: only the small file (3 holders).
        assert_eq!(cdfs[1].1.len(), 1);
        assert_eq!(cdfs[1].1.fraction_at_most(512.0), 1.0);
    }

    #[test]
    fn mix_and_tail() {
        let trace = build();
        let (small, mid, large) = size_mix(&trace);
        assert!((small - 0.5).abs() < 1e-12);
        assert_eq!(mid, 0.0);
        assert!((large - 0.5).abs() < 1e-12);
        assert!((fraction_larger_than(&trace, 1, 600 << 20) - 0.5).abs() < 1e-12);
        assert_eq!(fraction_larger_than(&trace, 2, 600 << 20), 0.0);
        assert_eq!(fraction_larger_than(&Trace::new(), 1, 0), 0.0);
    }
}
