//! Banded out-of-core overlap: the paper-scale Fig. 13/14 engine
//! (DESIGN.md §13).
//!
//! [`crate::semantic::overlap_counts_arena`] touches every co-holder
//! pair of every qualifying file: with holder cap `H` its work and —
//! more importantly at 320 k peers — its *emitted pair list* grow as
//! `Σ_f h_f²`, which the dense head of the holder distribution
//! dominates ("Ten weeks in the life of an eDonkey server" shows the
//! same head). The banded engine splits qualifying files by holder
//! count at `band_cap`:
//!
//! * the **sparse tail** (`2 ≤ holders ≤ band_cap`) keeps the exact
//!   row-sharded dense accumulator — cheap, and the bulk of distinct
//!   files;
//! * the **dense head** (`band_cap < holders ≤ max_holders`) never
//!   feeds the accumulator. Head co-occurrence only *marks* a candidate
//!   pair; the head contribution is then resolved per pair — estimated
//!   first from per-peer MinHash sketches (`k` splitmix64-seeded mins à
//!   la Broder's resemblance estimation), and computed by exact CSR
//!   intersection of the two head rows only when the estimate clears
//!   `admit_floor`. Pairs below the floor drop their head contribution
//!   (and vanish entirely when they share no tail file), which is what
//!   bounds the emitted pair list — and the correlation curve's error —
//!   at paper scale.
//!
//! Two pinned exactness modes guard the approximation: `prefilter_off`
//! (every candidate resolved exactly) and `admit_floor == 0` (every
//! estimate clears the floor) are both bit-identical to the exact
//! parallel engine — same entries, same order — for any thread count.
//! The pruned curve is tolerance-checked against the exact curve at
//! repro scale in `bench_report` before the report writes.

use edonkey_trace::compact::CacheArena;
use edonkey_trace::model::FileRef;
use edonkey_trace::pipeline::sorted_intersection_len;

use crate::semantic::{CorrelationPoint, OverlapCounts};

/// splitmix64 finalizer — same pinned constants as `workload::mix`
/// (this crate cannot depend on the generator crate; the bit pattern is
/// pinned by a test below so the sketches stay deterministic).
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Domain separation for the per-row MinHash functions.
const SALT_MINHASH: u64 = 0x62_61_6e_64_4d_48_31_00; // "bandMH1"

/// File-class codes for the banded pass.
const SKIP: u8 = 0;
const TAIL: u8 = 1;
const HEAD: u8 = 2;

/// Configuration of the banded engine.
#[derive(Clone, Copy, Debug)]
pub struct BandedOverlapConfig {
    /// Holder-count boundary: files with more holders go to the head
    /// band (sketch + per-pair intersection), the rest stay exact.
    pub band_cap: usize,
    /// Files above this holder count are skipped entirely (`None` = no
    /// cap) — same meaning as the exact engine's `max_holders`.
    pub max_holders: Option<usize>,
    /// MinHash functions per sketch (the paper tier uses 128).
    pub sketch_k: usize,
    /// Minimum *estimated* head overlap for a candidate pair to earn an
    /// exact head intersection; `0` admits everything (exact mode).
    pub admit_floor: u32,
    /// Bypass the estimator: resolve every candidate exactly. Pinned
    /// bit-identical to the exact parallel engine.
    pub prefilter_off: bool,
    /// Seed of the sketch hash family.
    pub seed: u64,
}

impl BandedOverlapConfig {
    /// The paper-tier defaults: head band above 24 holders, capped at
    /// 200 (the bench's Fig. 13 cap), k = 128 sketches, floor 2.
    pub fn paper_default(seed: u64) -> Self {
        BandedOverlapConfig {
            band_cap: 24,
            max_holders: Some(200),
            sketch_k: 128,
            admit_floor: 2,
            prefilter_off: false,
            seed,
        }
    }
}

/// What the banded pass did — the pruning ledger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BandedOverlapStats {
    /// Qualifying files in the sparse tail band.
    pub tail_files: usize,
    /// Qualifying files in the dense head band.
    pub head_files: usize,
    /// Peers holding at least one head file (the sketched set).
    pub sketched_peers: usize,
    /// Pairs marked by head co-occurrence (each counted once).
    pub candidate_pairs: u64,
    /// Candidates whose head contribution was resolved exactly.
    pub admitted_pairs: u64,
    /// Candidates whose head contribution was dropped by the estimate.
    pub pruned_pairs: u64,
}

impl BandedOverlapStats {
    fn absorb(&mut self, other: &BandedOverlapStats) {
        self.candidate_pairs += other.candidate_pairs;
        self.admitted_pairs += other.admitted_pairs;
        self.pruned_pairs += other.pruned_pairs;
    }
}

/// CSR of each peer's head-band files (sorted, like the arena rows they
/// are filtered from).
pub struct HeadRows {
    offsets: Vec<u32>,
    files: Vec<FileRef>,
}

impl HeadRows {
    /// Extracts the head-band rows from an arena given the file classes.
    fn build(arena: &CacheArena, class: &[u8]) -> Self {
        let n_peers = arena.n_peers();
        let mut offsets = Vec::with_capacity(n_peers + 1);
        offsets.push(0u32);
        let mut total = 0u32;
        for a in 0..n_peers {
            total += arena
                .cache(a)
                .iter()
                .filter(|f| class[f.index()] == HEAD)
                .count() as u32;
            offsets.push(total);
        }
        let mut files = Vec::with_capacity(total as usize);
        for a in 0..n_peers {
            files.extend(
                arena
                    .cache(a)
                    .iter()
                    .filter(|f| class[f.index()] == HEAD)
                    .copied(),
            );
        }
        HeadRows { offsets, files }
    }

    /// Peer `p`'s head-band files, sorted ascending.
    pub fn row(&self, p: usize) -> &[FileRef] {
        &self.files[self.offsets[p] as usize..self.offsets[p + 1] as usize]
    }

    /// Number of peers covered.
    pub fn n_peers(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// Per-peer MinHash sketches over the head-band rows.
///
/// Only peers with a non-empty head row carry a sketch (free-riders and
/// tail-only peers cost nothing); `estimate_common` maps the matched-min
/// fraction `m/k` through the Jaccard identity `|A∩B| = J/(1+J) ·
/// (|A|+|B|)` to an estimated common-file count.
pub struct HeadSketches {
    k: usize,
    /// `slot[p]` indexes into `mins`, `u32::MAX` for unsketched peers.
    slot: Vec<u32>,
    /// `sketched × k` min-hashes, row-major.
    mins: Vec<u64>,
    /// Head-row length per peer (the `|A|`, `|B|` of the identity).
    head_len: Vec<u32>,
}

impl HeadSketches {
    /// Builds sketches for every peer with a non-empty head row,
    /// sharded over `threads` contiguous slot ranges (output is
    /// position-keyed, so it is thread-invariant by construction).
    pub fn build(rows: &HeadRows, k: usize, seed: u64, threads: usize) -> Self {
        let n_peers = rows.n_peers();
        let keys: Vec<u64> = (0..k as u64)
            .map(|j| splitmix64(seed ^ SALT_MINHASH ^ j.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect();
        let mut slot = vec![u32::MAX; n_peers];
        let mut head_len = vec![0u32; n_peers];
        let mut sketched: Vec<u32> = Vec::new();
        for p in 0..n_peers {
            let len = rows.row(p).len();
            head_len[p] = len as u32;
            if len > 0 {
                slot[p] = sketched.len() as u32;
                sketched.push(p as u32);
            }
        }
        let mut mins = vec![u64::MAX; sketched.len() * k];
        let per = sketched.len().div_ceil(threads.max(1)).max(1);
        let fill = |base: usize, peers: &[u32], out: &mut [u64]| {
            for (s, &p) in peers.iter().enumerate() {
                let row = rows.row(p as usize);
                let dst = &mut out[s * k..(s + 1) * k];
                for &f in row {
                    for (j, &key) in keys.iter().enumerate() {
                        let h = splitmix64(key ^ u64::from(f.0));
                        if h < dst[j] {
                            dst[j] = h;
                        }
                    }
                }
                let _ = base; // slots are absolute; base kept for clarity
            }
        };
        if sketched.len() <= per {
            fill(0, &sketched, &mut mins);
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = sketched
                    .chunks(per)
                    .zip(mins.chunks_mut(per * k))
                    .enumerate()
                    .map(|(w, (peers, out))| scope.spawn(move || fill(w * per, peers, out)))
                    .collect();
                for h in handles {
                    h.join().expect("sketch worker panicked");
                }
            });
        }
        HeadSketches {
            k,
            slot,
            mins,
            head_len,
        }
    }

    /// Number of sketched peers.
    pub fn sketched_peers(&self) -> usize {
        self.mins.len() / self.k.max(1)
    }

    /// Estimated number of common head-band files of `a` and `b`
    /// (0 when either peer holds no head file).
    pub fn estimate_common(&self, a: usize, b: usize) -> u32 {
        let (sa, sb) = (self.slot[a], self.slot[b]);
        if sa == u32::MAX || sb == u32::MAX {
            return 0;
        }
        let ma = &self.mins[sa as usize * self.k..(sa as usize + 1) * self.k];
        let mb = &self.mins[sb as usize * self.k..(sb as usize + 1) * self.k];
        let matches = ma.iter().zip(mb).filter(|(x, y)| x == y).count();
        if matches == 0 {
            return 0;
        }
        let j = matches as f64 / self.k as f64;
        let union_to_common = j / (1.0 + j);
        (union_to_common * f64::from(self.head_len[a] + self.head_len[b])).round() as u32
    }
}

/// Classifies every file into skip / tail / head for the banded pass.
fn classify(
    arena: &CacheArena,
    qualifies: impl Fn(FileRef) -> bool,
    cfg: &BandedOverlapConfig,
) -> (Vec<u8>, usize, usize) {
    let cap = cfg.max_holders.unwrap_or(usize::MAX);
    let mut class = vec![SKIP; arena.n_files()];
    let (mut tail_files, mut head_files) = (0usize, 0usize);
    for (i, slot) in class.iter_mut().enumerate() {
        let f = FileRef(i as u32);
        if !qualifies(f) {
            continue;
        }
        let holders = arena.holders(f).len();
        if holders < 2 || holders > cap {
            continue;
        }
        if holders > cfg.band_cap {
            *slot = HEAD;
            head_files += 1;
        } else {
            *slot = TAIL;
            tail_files += 1;
        }
    }
    (class, tail_files, head_files)
}

/// Per-row banded scratch shared by both output modes.
struct RowScratch {
    tail_acc: Vec<u32>,
    head_hit: Vec<bool>,
    touched: Vec<u32>,
}

impl RowScratch {
    fn new(n_peers: usize) -> Self {
        RowScratch {
            tail_acc: vec![0; n_peers],
            head_hit: vec![false; n_peers],
            touched: Vec::new(),
        }
    }
}

/// Resolves one row: accumulates tail counts, marks head candidates,
/// then emits `(a, b, total)` in ascending-`b` order — the exact
/// engine's emission order.
#[allow(clippy::too_many_arguments)]
fn process_row(
    arena: &CacheArena,
    class: &[u8],
    rows: &HeadRows,
    sketches: &HeadSketches,
    cfg: &BandedOverlapConfig,
    a: usize,
    scratch: &mut RowScratch,
    stats: &mut BandedOverlapStats,
    emit: &mut impl FnMut(u32, u32, u32),
) {
    let RowScratch {
        tail_acc,
        head_hit,
        touched,
    } = scratch;
    for &f in arena.cache(a) {
        match class[f.index()] {
            TAIL => {
                let hs = arena.holders(f);
                let from = hs.partition_point(|&b| b <= a as u32);
                for &b in &hs[from..] {
                    if tail_acc[b as usize] == 0 && !head_hit[b as usize] {
                        touched.push(b);
                    }
                    tail_acc[b as usize] += 1;
                }
            }
            HEAD => {
                let hs = arena.holders(f);
                let from = hs.partition_point(|&b| b <= a as u32);
                for &b in &hs[from..] {
                    if tail_acc[b as usize] == 0 && !head_hit[b as usize] {
                        touched.push(b);
                    }
                    head_hit[b as usize] = true;
                }
            }
            _ => {}
        }
    }
    touched.sort_unstable();
    for &b in touched.iter() {
        let tail = tail_acc[b as usize];
        let mut total = tail;
        if head_hit[b as usize] {
            stats.candidate_pairs += 1;
            let admitted =
                cfg.prefilter_off || sketches.estimate_common(a, b as usize) >= cfg.admit_floor;
            if admitted {
                stats.admitted_pairs += 1;
                total += sorted_intersection_len(rows.row(a), rows.row(b as usize)) as u32;
            } else {
                stats.pruned_pairs += 1;
            }
        }
        if total > 0 {
            emit(a as u32, b, total);
        }
        tail_acc[b as usize] = 0;
        head_hit[b as usize] = false;
    }
    touched.clear();
}

/// The shared banded fan-out: workers claim row chunks off a cursor and
/// fold each row through `process_row` into a per-chunk output.
#[allow(clippy::too_many_arguments)]
fn run_banded<Out: Send>(
    arena: &CacheArena,
    class: &[u8],
    rows: &HeadRows,
    sketches: &HeadSketches,
    cfg: &BandedOverlapConfig,
    threads: usize,
    make_out: impl Fn() -> Out + Sync,
    fold: impl Fn(&mut Out, u32, u32, u32) + Sync,
) -> (Vec<(usize, Out)>, BandedOverlapStats) {
    let n_peers = arena.n_peers();
    let threads = threads.max(1).min(n_peers.max(1));
    let chunk = (n_peers / (threads * 16)).max(8);
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let run_worker = || {
        let mut scratch = RowScratch::new(n_peers);
        let mut stats = BandedOverlapStats::default();
        let mut segments: Vec<(usize, Out)> = Vec::new();
        loop {
            let start = cursor.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
            if start >= n_peers {
                break;
            }
            let mut out = make_out();
            for a in start..(start + chunk).min(n_peers) {
                process_row(
                    arena,
                    class,
                    rows,
                    sketches,
                    cfg,
                    a,
                    &mut scratch,
                    &mut stats,
                    &mut |a, b, c| fold(&mut out, a, b, c),
                );
            }
            segments.push((start, out));
        }
        (segments, stats)
    };
    let parts: Vec<(Vec<(usize, Out)>, BandedOverlapStats)> = if threads == 1 {
        vec![run_worker()]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads).map(|_| scope.spawn(run_worker)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("banded overlap worker panicked"))
                .collect()
        })
    };
    let mut segments = Vec::new();
    let mut stats = BandedOverlapStats::default();
    for (segs, part_stats) in parts {
        segments.extend(segs);
        stats.absorb(&part_stats);
    }
    segments.sort_unstable_by_key(|&(start, _)| start);
    (segments, stats)
}

/// Banded [`crate::semantic::overlap_counts_arena`]: materializes the
/// pair list. With `prefilter_off` (or `admit_floor == 0`) the result
/// is bit-identical to the exact parallel engine for any thread count.
pub fn overlap_counts_banded_with_threads(
    arena: &CacheArena,
    qualifies: impl Fn(FileRef) -> bool + Sync,
    cfg: &BandedOverlapConfig,
    threads: usize,
) -> (OverlapCounts, BandedOverlapStats) {
    if arena.n_files() == 0 || arena.n_peers() < 2 {
        return (
            OverlapCounts::from_entries(Vec::new()),
            BandedOverlapStats::default(),
        );
    }
    arena.ensure_holders();
    let (class, tail_files, head_files) = classify(arena, qualifies, cfg);
    let rows = HeadRows::build(arena, &class);
    let sketches = HeadSketches::build(&rows, cfg.sketch_k.max(1), cfg.seed, threads);
    let (segments, mut stats) = run_banded(
        arena,
        &class,
        &rows,
        &sketches,
        cfg,
        threads,
        Vec::new,
        |out: &mut Vec<((u32, u32), u32)>, a, b, c| out.push(((a, b), c)),
    );
    stats.tail_files = tail_files;
    stats.head_files = head_files;
    stats.sketched_peers = sketches.sketched_peers();
    let total = segments.iter().map(|(_, s)| s.len()).sum();
    let mut entries = Vec::with_capacity(total);
    for (_, segment) in segments {
        entries.extend(segment);
    }
    (OverlapCounts::from_entries(entries), stats)
}

/// [`overlap_counts_banded_with_threads`] on all available cores.
pub fn overlap_counts_banded(
    arena: &CacheArena,
    qualifies: impl Fn(FileRef) -> bool + Sync,
    cfg: &BandedOverlapConfig,
) -> (OverlapCounts, BandedOverlapStats) {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    overlap_counts_banded_with_threads(arena, qualifies, cfg, threads)
}

/// The out-of-core variant: folds every emitted pair straight into an
/// overlap histogram (`hist[c]` = pairs with overlap exactly `c`), so
/// the paper-scale curve never materializes the pair list. Identical
/// counts to histogramming [`overlap_counts_banded_with_threads`]'s
/// entries.
pub fn banded_overlap_histogram_with_threads(
    arena: &CacheArena,
    qualifies: impl Fn(FileRef) -> bool + Sync,
    cfg: &BandedOverlapConfig,
    threads: usize,
) -> (Vec<u64>, BandedOverlapStats) {
    if arena.n_files() == 0 || arena.n_peers() < 2 {
        return (Vec::new(), BandedOverlapStats::default());
    }
    arena.ensure_holders();
    let (class, tail_files, head_files) = classify(arena, qualifies, cfg);
    let rows = HeadRows::build(arena, &class);
    let sketches = HeadSketches::build(&rows, cfg.sketch_k.max(1), cfg.seed, threads);
    let (segments, mut stats) = run_banded(
        arena,
        &class,
        &rows,
        &sketches,
        cfg,
        threads,
        Vec::new,
        |hist: &mut Vec<u64>, _a, _b, c| {
            let c = c as usize;
            if hist.len() <= c {
                hist.resize(c + 1, 0);
            }
            hist[c] += 1;
        },
    );
    stats.tail_files = tail_files;
    stats.head_files = head_files;
    stats.sketched_peers = sketches.sketched_peers();
    let mut hist: Vec<u64> = Vec::new();
    for (_, part) in segments {
        if hist.len() < part.len() {
            hist.resize(part.len(), 0);
        }
        for (dst, src) in hist.iter_mut().zip(part) {
            *dst += src;
        }
    }
    stats.tail_files = tail_files;
    (hist, stats)
}

/// The Fig. 13 correlation curve from an overlap histogram — the same
/// numbers [`correlation_curve`] computes from the pair list.
pub fn curve_from_histogram(hist: &[u64]) -> Vec<CorrelationPoint> {
    let max_overlap = hist.len().saturating_sub(1);
    if max_overlap == 0 {
        return Vec::new();
    }
    let mut at_least = vec![0u64; max_overlap + 2];
    for (c, &n) in hist.iter().enumerate().skip(1) {
        at_least[c] = n;
    }
    for k in (1..=max_overlap).rev() {
        at_least[k] += at_least[k + 1];
    }
    (1..=max_overlap)
        .filter(|&k| at_least[k] > 0)
        .map(|k| CorrelationPoint {
            common: k as u32,
            probability_percent: 100.0 * at_least[k + 1] as f64 / at_least[k] as f64,
            pairs: at_least[k] as usize,
        })
        .collect()
}

/// Largest absolute per-point difference (percentage points) between
/// two correlation curves — the tolerance the bench asserts on the
/// pruned paper-tier curve. Points are matched by `common` value (the
/// curves may have gaps where no pair reaches a count).
///
/// Only points with `common > min_common` and exact support
/// `>= min_support` pairs are compared: the admit floor drops
/// head-only pairs whose true overlap sits at or just below the floor,
/// so the curve's first few points move *by design*, and points backed
/// by a handful of pairs are sampling noise, not signal. A banded
/// curve missing a compared point counts as a 100-point difference.
pub fn curve_max_abs_diff(
    exact: &[CorrelationPoint],
    banded: &[CorrelationPoint],
    min_common: u32,
    min_support: usize,
) -> f64 {
    exact
        .iter()
        .filter(|e| e.common > min_common && e.pairs >= min_support)
        .map(|e| {
            banded
                .iter()
                .find(|b| b.common == e.common)
                .map_or(100.0, |b| {
                    (e.probability_percent - b.probability_percent).abs()
                })
        })
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::{correlation_curve, overlap_counts_arena_with_threads};

    #[test]
    fn splitmix64_is_pinned_to_the_workspace_constants() {
        assert_eq!(splitmix64(0), 0);
        assert_eq!(splitmix64(1), 0x5692_161d_100b_05e5);
        assert_eq!(splitmix64(0x9e37_79b9_7f4a_7c15), 0xe220_a839_7b1d_cdaf);
    }

    /// A clustered synthetic arena: `n_peers` peers, popular head files
    /// shared broadly (how many varies by peer, so pair overlaps do
    /// too), tail files shared within small groups.
    fn arena(n_peers: u32, n_files: u32) -> CacheArena {
        let caches: Vec<Vec<FileRef>> = (0..n_peers)
            .map(|p| {
                let mut cache: Vec<FileRef> = (0..4 + p % 5).map(|h| FileRef(h)).collect();
                cache.extend((0..12u32).map(|i| FileRef(8 + (p / 4) * 12 + i)));
                cache.retain(|f| f.0 < n_files);
                cache.sort_unstable();
                cache.dedup();
                cache
            })
            .collect();
        CacheArena::from_caches(&caches, n_files as usize)
    }

    fn cfg(prefilter_off: bool, admit_floor: u32) -> BandedOverlapConfig {
        BandedOverlapConfig {
            band_cap: 6,
            max_holders: Some(64),
            sketch_k: 64,
            admit_floor,
            prefilter_off,
            seed: 7,
        }
    }

    #[test]
    fn prefilter_off_is_bit_identical_to_the_exact_engine() {
        let arena = arena(40, 200);
        let exact = overlap_counts_arena_with_threads(&arena, |_| true, Some(64), 3);
        for threads in [1, 2, 8] {
            let (banded, stats) =
                overlap_counts_banded_with_threads(&arena, |_| true, &cfg(true, 3), threads);
            assert!(banded.iter().eq(exact.iter()), "threads={threads}");
            assert_eq!(stats.pruned_pairs, 0);
            assert!(stats.head_files > 0 && stats.tail_files > 0, "{stats:?}");
        }
    }

    #[test]
    fn zero_floor_is_bit_identical_too() {
        let arena = arena(40, 200);
        let exact = overlap_counts_arena_with_threads(&arena, |_| true, Some(64), 2);
        let (banded, stats) =
            overlap_counts_banded_with_threads(&arena, |_| true, &cfg(false, 0), 4);
        assert!(banded.iter().eq(exact.iter()));
        assert_eq!(stats.pruned_pairs, 0);
        assert_eq!(stats.admitted_pairs, stats.candidate_pairs);
    }

    #[test]
    fn pruning_only_drops_head_contributions() {
        let arena = arena(48, 240);
        let exact = overlap_counts_arena_with_threads(&arena, |_| true, Some(64), 2);
        let (banded, stats) =
            overlap_counts_banded_with_threads(&arena, |_| true, &cfg(false, 6), 4);
        assert!(stats.pruned_pairs > 0, "floor 6 must prune something");
        assert!(stats.admitted_pairs > 0, "floor 6 must admit something");
        for ((a, b), count) in banded.iter() {
            let full = exact.overlap(a, b);
            assert!(count <= full, "banded can only lose head files");
        }
    }

    #[test]
    fn histogram_matches_materialized_entries() {
        let arena = arena(40, 200);
        for threads in [1, 3] {
            let (counts, s1) =
                overlap_counts_banded_with_threads(&arena, |_| true, &cfg(false, 2), threads);
            let (hist, s2) =
                banded_overlap_histogram_with_threads(&arena, |_| true, &cfg(false, 2), threads);
            let mut expect = Vec::new();
            for (_, c) in counts.iter() {
                let c = c as usize;
                if expect.len() <= c {
                    expect.resize(c + 1, 0u64);
                }
                expect[c] += 1;
            }
            assert_eq!(hist, expect);
            assert_eq!(s1, s2);
            assert_eq!(
                curve_from_histogram(&hist),
                correlation_curve(&counts),
                "curve paths must agree"
            );
        }
    }

    #[test]
    fn estimator_tracks_true_head_overlap() {
        let arena = arena(40, 200);
        let (class, _, _) = classify(&arena, |_| true, &cfg(false, 2));
        let rows = HeadRows::build(&arena, &class);
        let sketches = HeadSketches::build(&rows, 128, 7, 2);
        // Head files are held broadly: the estimate for a pair must
        // land near its true head overlap.
        let est = sketches.estimate_common(0, 1);
        let truth = sorted_intersection_len(rows.row(0), rows.row(1)) as u32;
        assert!(
            est.abs_diff(truth) <= 3,
            "estimate {est} too far from {truth}"
        );
    }
}
