//! Fig. 5 (file replication vs rank) and popularity helpers.

use edonkey_trace::model::Trace;

use crate::stats::{log_downsample, rank_curve};

/// Fig. 5: the rank–replication curve for one day: `(rank, sources)`
/// with rank 1 = most replicated, files with zero sources omitted.
pub fn replication_rank_curve(trace: &Trace, day: u32) -> Vec<(usize, u64)> {
    let Some(snap) = trace.snapshot(day) else {
        return Vec::new();
    };
    let mut counts = vec![0u64; trace.files.len()];
    for (_, cache) in &snap.caches {
        for f in cache {
            counts[f.index()] += 1;
        }
    }
    let nonzero: Vec<u64> = counts.into_iter().filter(|&c| c > 0).collect();
    rank_curve(nonzero)
}

/// Fig. 5, plot-ready: log-downsampled curves for several days.
pub fn replication_curves(
    trace: &Trace,
    days: &[u32],
    points_per_decade: usize,
) -> Vec<(u32, Vec<(usize, u64)>)> {
    days.iter()
        .map(|&d| {
            (
                d,
                log_downsample(&replication_rank_curve(trace, d), points_per_decade),
            )
        })
        .collect()
}

/// Picks `n` sample days evenly spread across the trace (the paper uses
/// days 346, 356, 366, 376, 386 — every tenth day).
pub fn sample_days(trace: &Trace, n: usize) -> Vec<u32> {
    let (Some(first), Some(last)) = (trace.first_day(), trace.last_day()) else {
        return Vec::new();
    };
    if n <= 1 || first == last {
        return vec![first];
    }
    (0..n)
        .map(|i| first + ((last - first) as usize * i / (n - 1)) as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::md4::Md4;
    use edonkey_proto::query::FileKind;
    use edonkey_trace::model::{CountryCode, FileInfo, PeerInfo, TraceBuilder};

    fn build() -> Trace {
        let mut b = TraceBuilder::new();
        let peers: Vec<_> = (0..5)
            .map(|i| {
                b.intern_peer(PeerInfo {
                    uid: Md4::digest(&[i]),
                    ip: i as u32,
                    country: CountryCode::new("FR"),
                    asn: 1,
                })
            })
            .collect();
        let files: Vec<_> = (0..3)
            .map(|i| {
                b.intern_file(FileInfo {
                    id: Md4::digest(format!("f{i}").as_bytes()),
                    size: 1,
                    kind: FileKind::Audio,
                })
            })
            .collect();
        // f0 held by 4 peers, f1 by 2, f2 by none on day 20.
        for p in &peers[..4] {
            b.observe(20, *p, vec![files[0]]);
        }
        b.observe(20, peers[4], vec![files[1]]);
        b.observe(25, peers[0], vec![files[1], files[2]]);
        b.finish()
    }

    #[test]
    fn rank_curve_for_day() {
        let trace = build();
        // Day 20: f0 has 4 sources, f1 has 1 (only peer 4)... wait, peer0-3
        // share f0, peer4 shares f1.
        assert_eq!(replication_rank_curve(&trace, 20), vec![(1, 4), (2, 1)]);
        assert_eq!(replication_rank_curve(&trace, 25), vec![(1, 1), (2, 1)]);
        assert!(replication_rank_curve(&trace, 99).is_empty());
    }

    #[test]
    fn curves_for_multiple_days() {
        let trace = build();
        let curves = replication_curves(&trace, &[20, 25], 4);
        assert_eq!(curves.len(), 2);
        assert_eq!(curves[0].0, 20);
        assert_eq!(curves[0].1[0], (1, 4));
    }

    #[test]
    fn sample_days_spread() {
        let trace = build();
        assert_eq!(sample_days(&trace, 2), vec![20, 25]);
        assert_eq!(sample_days(&trace, 1), vec![20]);
        assert_eq!(sample_days(&Trace::new(), 3), Vec::<u32>::new());
        let five = sample_days(&trace, 5);
        assert_eq!(five.len(), 5);
        assert_eq!(five[0], 20);
        assert_eq!(*five.last().unwrap(), 25);
    }
}
