//! Shared derived views over traces: per-file popularity, inverted
//! holder indexes, per-file observation spans.
//!
//! Nearly every analysis needs "who holds what" in one direction or the
//! other; computing these once and passing them around keeps each figure
//! module small and the whole bench run linear in trace size.

use edonkey_trace::model::{FileRef, Trace};

/// Number of distinct peers holding each file, over the whole trace
/// (static popularity — the paper's "number of replicas or sources per
/// file").
pub fn static_popularity(trace: &Trace) -> Vec<u32> {
    popularity_of_caches(&trace.static_caches(), trace.files.len())
}

/// Popularity (holder counts) from an explicit set of caches.
pub fn popularity_of_caches(caches: &[Vec<FileRef>], n_files: usize) -> Vec<u32> {
    let mut counts = vec![0u32; n_files];
    for cache in caches {
        for f in cache {
            counts[f.index()] += 1;
        }
    }
    counts
}

/// Inverted index: for each file, the sorted list of peers holding it
/// (from an explicit cache set).
pub fn holders(caches: &[Vec<FileRef>], n_files: usize) -> Vec<Vec<u32>> {
    let mut idx: Vec<Vec<u32>> = vec![Vec::new(); n_files];
    for (peer, cache) in caches.iter().enumerate() {
        for f in cache {
            idx[f.index()].push(peer as u32);
        }
    }
    idx
}

/// Per-file observation statistics over the trace days.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FileSpan {
    /// Number of days on which at least one peer shared the file.
    pub days_seen: u32,
    /// Distinct peers that ever shared the file.
    pub distinct_sources: u32,
}

impl FileSpan {
    /// The paper's *average popularity*: distinct sources divided by days
    /// seen (Section 4.1). Zero for never-seen files.
    pub fn average_popularity(&self) -> f64 {
        if self.days_seen == 0 {
            return 0.0;
        }
        self.distinct_sources as f64 / self.days_seen as f64
    }
}

/// Computes per-file spans (days seen, distinct sources) in one pass.
pub fn file_spans(trace: &Trace) -> Vec<FileSpan> {
    let mut spans = vec![FileSpan::default(); trace.files.len()];
    // Distinct sources via the static union.
    for (count, span) in static_popularity(trace).into_iter().zip(spans.iter_mut()) {
        span.distinct_sources = count;
    }
    // Days seen via a per-day distinct-file scan.
    let mut seen_today = vec![false; trace.files.len()];
    for day in &trace.days {
        for (_, cache) in &day.caches {
            for f in cache {
                if !seen_today[f.index()] {
                    seen_today[f.index()] = true;
                    spans[f.index()].days_seen += 1;
                }
            }
        }
        for (_, cache) in &day.caches {
            for f in cache {
                seen_today[f.index()] = false;
            }
        }
    }
    spans
}

/// Returns the indices of the `k` files with the highest values,
/// descending (ties broken by lower index first).
pub fn top_k_files(values: &[u32], k: usize) -> Vec<FileRef> {
    let mut order: Vec<u32> = (0..values.len() as u32).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(values[i as usize]), i));
    order.into_iter().take(k).map(FileRef).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::md4::Md4;
    use edonkey_proto::query::FileKind;
    use edonkey_trace::model::{CountryCode, FileInfo, PeerInfo, TraceBuilder};

    fn build() -> (Trace, Vec<FileRef>) {
        let mut b = TraceBuilder::new();
        let peers: Vec<_> = (0..4)
            .map(|i| {
                b.intern_peer(PeerInfo {
                    uid: Md4::digest(&[i]),
                    ip: i as u32,
                    country: CountryCode::new("FR"),
                    asn: 1,
                })
            })
            .collect();
        let files: Vec<_> = (0..3)
            .map(|i| {
                b.intern_file(FileInfo {
                    id: Md4::digest(format!("f{i}").as_bytes()),
                    size: 10,
                    kind: FileKind::Audio,
                })
            })
            .collect();
        // Day 1: f0 on p0,p1; f1 on p0. Day 2: f0 on p2; f2 on p3.
        b.observe(1, peers[0], vec![files[0], files[1]]);
        b.observe(1, peers[1], vec![files[0]]);
        b.observe(2, peers[2], vec![files[0]]);
        b.observe(2, peers[3], vec![files[2]]);
        (b.finish(), files)
    }

    #[test]
    fn popularity_counts_distinct_holders() {
        let (trace, _) = build();
        assert_eq!(static_popularity(&trace), vec![3, 1, 1]);
    }

    #[test]
    fn holders_inverts_caches() {
        let (trace, _) = build();
        let caches = trace.static_caches();
        let idx = holders(&caches, trace.files.len());
        assert_eq!(idx[0], vec![0, 1, 2]);
        assert_eq!(idx[1], vec![0]);
        assert_eq!(idx[2], vec![3]);
    }

    #[test]
    fn spans_and_average_popularity() {
        let (trace, _) = build();
        let spans = file_spans(&trace);
        assert_eq!(
            spans[0],
            FileSpan {
                days_seen: 2,
                distinct_sources: 3
            }
        );
        assert_eq!(
            spans[1],
            FileSpan {
                days_seen: 1,
                distinct_sources: 1
            }
        );
        assert!((spans[0].average_popularity() - 1.5).abs() < 1e-12);
        assert_eq!(FileSpan::default().average_popularity(), 0.0);
    }

    #[test]
    fn top_k_orders_by_count() {
        let values = vec![2, 9, 9, 1];
        assert_eq!(
            top_k_files(&values, 3),
            vec![FileRef(1), FileRef(2), FileRef(0)]
        );
        assert_eq!(top_k_files(&values, 0), Vec::<FileRef>::new());
        assert_eq!(top_k_files(&values, 99).len(), 4);
    }
}
