//! Figs. 8, 9, 10: file spread over time and rank evolution.

use edonkey_trace::model::{FileRef, Trace};

use crate::view::top_k_files;

/// Per-day holder counts for one day of the trace, as a dense vector.
fn day_counts(trace: &Trace, day_index: usize) -> Vec<u32> {
    let mut counts = vec![0u32; trace.files.len()];
    for (_, cache) in &trace.days[day_index].caches {
        for f in cache {
            counts[f.index()] += 1;
        }
    }
    counts
}

/// The `k` most-replicated files over the *whole* trace period (distinct
/// holders across all days) — the "6 most popular files" of Fig. 8.
pub fn top_files_overall(trace: &Trace, k: usize) -> Vec<FileRef> {
    top_k_files(&crate::view::static_popularity(trace), k)
}

/// The `k` most-replicated files on one specific day — Figs. 9/10 track
/// "the top 5 of day 348" and "of day 367".
pub fn top_files_on_day(trace: &Trace, day: u32, k: usize) -> Vec<FileRef> {
    let Some(idx) = trace.days.iter().position(|s| s.day == day) else {
        return Vec::new();
    };
    let counts = day_counts(trace, idx);
    top_k_files(&counts, k)
        .into_iter()
        .filter(|f| counts[f.index()] > 0)
        .collect()
}

/// Fig. 8: for each tracked file, the per-day fraction of clients holding
/// it (`spread`, in percent of the stage's client population).
///
/// Output: one `(file, series)` per tracked file, where the series holds
/// `(day, spread_percent)`.
pub fn spread_over_time(trace: &Trace, files: &[FileRef]) -> Vec<(FileRef, Vec<(u32, f64)>)> {
    let clients = trace.peers.len().max(1) as f64;
    let mut result: Vec<(FileRef, Vec<(u32, f64)>)> = files
        .iter()
        .map(|&f| (f, Vec::with_capacity(trace.days.len())))
        .collect();
    for (idx, snap) in trace.days.iter().enumerate() {
        let counts = day_counts(trace, idx);
        for (f, series) in &mut result {
            series.push((snap.day, 100.0 * counts[f.index()] as f64 / clients));
        }
    }
    result
}

/// Per-day `(day, rank)` series; `None` = zero holders that day.
pub type RankSeries = Vec<(u32, Option<usize>)>;

/// Figs. 9/10: for each tracked file, its per-day popularity *rank*
/// (1 = most replicated; ties broken by file index; files with zero
/// holders that day get rank `None`).
pub fn rank_over_time(trace: &Trace, files: &[FileRef]) -> Vec<(FileRef, RankSeries)> {
    let mut result: Vec<(FileRef, RankSeries)> = files
        .iter()
        .map(|&f| (f, Vec::with_capacity(trace.days.len())))
        .collect();
    for (idx, snap) in trace.days.iter().enumerate() {
        let counts = day_counts(trace, idx);
        // Rank of file f = 1 + number of files strictly more replicated
        // (+ ties with lower index). Computing only for tracked files
        // keeps this O(files × tracked) instead of a full sort per day.
        for (f, series) in &mut result {
            let mine = counts[f.index()];
            if mine == 0 {
                series.push((snap.day, None));
                continue;
            }
            let mut rank = 1usize;
            for (other, &c) in counts.iter().enumerate() {
                if c > mine || (c == mine && other < f.index()) {
                    rank += 1;
                }
            }
            series.push((snap.day, Some(rank)));
        }
    }
    result
}

/// The largest single-day holder count and its day, over tracked files —
/// the paper reports a maximum of 372 holders (0.7 % of clients).
pub fn peak_spread(trace: &Trace) -> Option<(FileRef, u32, u32)> {
    let mut best: Option<(FileRef, u32, u32)> = None;
    for (idx, snap) in trace.days.iter().enumerate() {
        let counts = day_counts(trace, idx);
        for (file_idx, &c) in counts.iter().enumerate() {
            if c > 0 && best.is_none_or(|(_, _, bc)| c > bc) {
                best = Some((FileRef(file_idx as u32), snap.day, c));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use edonkey_proto::md4::Md4;
    use edonkey_proto::query::FileKind;
    use edonkey_trace::model::{CountryCode, FileInfo, PeerInfo, TraceBuilder};

    /// f0 surges on day 2 (3 holders) then decays; f1 is steady at 1.
    fn build() -> (Trace, Vec<FileRef>) {
        let mut b = TraceBuilder::new();
        let peers: Vec<_> = (0..4)
            .map(|i| {
                b.intern_peer(PeerInfo {
                    uid: Md4::digest(&[i]),
                    ip: i as u32,
                    country: CountryCode::new("GB"),
                    asn: 5,
                })
            })
            .collect();
        let files: Vec<_> = (0..2)
            .map(|i| {
                b.intern_file(FileInfo {
                    id: Md4::digest(format!("f{i}").as_bytes()),
                    size: 1,
                    kind: FileKind::Audio,
                })
            })
            .collect();
        b.observe(1, peers[0], vec![files[0]]);
        b.observe(1, peers[1], vec![files[1]]);
        for p in &peers[..3] {
            b.observe(2, *p, vec![files[0]]);
        }
        b.observe(2, peers[3], vec![files[1]]);
        b.observe(3, peers[0], vec![files[0]]);
        b.observe(3, peers[1], vec![files[1]]);
        (b.finish(), files)
    }

    #[test]
    fn top_selection() {
        let (trace, files) = build();
        assert_eq!(top_files_overall(&trace, 1), vec![files[0]]);
        assert_eq!(top_files_on_day(&trace, 2, 2), vec![files[0], files[1]]);
        assert!(top_files_on_day(&trace, 99, 2).is_empty());
        // Day 1: both have one holder; tie broken by index.
        assert_eq!(top_files_on_day(&trace, 1, 1), vec![files[0]]);
    }

    #[test]
    fn spread_series() {
        let (trace, files) = build();
        let spread = spread_over_time(&trace, &files);
        let f0 = &spread[0].1;
        assert_eq!(f0.len(), 3);
        assert!((f0[0].1 - 25.0).abs() < 1e-12);
        assert!((f0[1].1 - 75.0).abs() < 1e-12, "surge day");
        assert!((f0[2].1 - 25.0).abs() < 1e-12, "decay");
    }

    #[test]
    fn rank_series() {
        let (trace, files) = build();
        let ranks = rank_over_time(&trace, &files);
        let f1 = &ranks[1].1;
        assert_eq!(f1[0], (1, Some(2)), "tie on day 1 broken by index");
        assert_eq!(f1[1], (2, Some(2)));
        // A file absent on a day gets None.
        let only_f0 = rank_over_time(&trace, &[files[1]]);
        assert!(only_f0[0].1.iter().all(|(_, r)| r.is_some()));
    }

    #[test]
    fn peak() {
        let (trace, files) = build();
        assert_eq!(peak_spread(&trace), Some((files[0], 2, 3)));
        assert_eq!(peak_spread(&Trace::new()), None);
    }
}
